type instr =
  | Push of int
  | Pop
  | Dup
  | Swap
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Eq
  | Lt
  | Gt
  | Not
  | Load of int
  | Store of int
  | Jmp of int
  | Jz of int
  | Call of int
  | Ret
  | Loadb
  | Storeb
  | Sys of int
  | Halt

let sys_putc = 0
let sys_print_int = 1
let sys_time = 2
let sys_send = 3
let sys_recv = 4
let sys_heap_size = 5

type bindings = {
  putc : char -> unit;
  send : bytes -> pos:int -> len:int -> int;
  recv : bytes -> pos:int -> len:int -> int;
  time_ns : unit -> int;
}

let null_bindings =
  { putc = (fun _ -> Error.fail Error.Notsup);
    send = (fun _ ~pos:_ ~len:_ -> Error.fail Error.Notsup);
    recv = (fun _ ~pos:_ ~len:_ -> Error.fail Error.Notsup);
    time_ns = (fun () -> 0) }

exception Vm_fault of string
exception Null_pointer of int

type t = {
  code : instr array;
  heap : bytes;
  globals : int array;
  stack : int array;
  mutable sp : int;
  rstack : int array;
  mutable rsp : int;
  bindings : bindings;
  traps : Trap.table option;
  mutable executed : int;
}

(* The null page: like Kaffe on the OSKit, we guard it with the processor's
   breakpoint machinery instead of checking every access in software. *)
let null_guard = 4096

let create ?(heap_size = 256 * 1024) ?(globals = 64) ?traps ~bindings code =
  (match traps with
  | Some table -> Trap.set_breakpoint table ~slot:0 ~addr:0l ~len:null_guard
  | None -> ());
  { code;
    heap = Bytes.make heap_size '\000';
    globals = Array.make globals 0;
    stack = Array.make 4096 0;
    sp = 0;
    rstack = Array.make 512 0;
    rsp = 0;
    bindings;
    traps;
    executed = 0 }

let heap t = t.heap
let instructions_executed t = t.executed

(* Per-instruction interpretation cost, charged in batches to keep the
   simulation fast.  20 cycles/instruction ~ a simple threaded
   interpreter on the P6. *)
let instr_cycles = 20
let charge_batch = 64

let check_heap_access t addr =
  if addr < null_guard then begin
    (match t.traps with
    | Some table -> ignore (Trap.check_access table (Int32.of_int addr))
    | None -> ());
    raise (Null_pointer addr)
  end;
  if addr >= Bytes.length t.heap then raise (Vm_fault "heap access out of range")

let run ?(fuel = 50_000_000) t =
  let push v =
    if t.sp >= Array.length t.stack then raise (Vm_fault "stack overflow");
    t.stack.(t.sp) <- v;
    t.sp <- t.sp + 1
  in
  let pop () =
    if t.sp <= 0 then raise (Vm_fault "stack underflow");
    t.sp <- t.sp - 1;
    t.stack.(t.sp)
  in
  let ncode = Array.length t.code in
  let pc = ref 0 in
  let halted = ref false in
  let remaining = ref fuel in
  let batch = ref 0 in
  while not !halted do
    if !remaining <= 0 then raise (Vm_fault "out of fuel");
    decr remaining;
    if !pc < 0 || !pc >= ncode then raise (Vm_fault "pc out of range");
    incr batch;
    if !batch >= charge_batch then begin
      if Cost.has_sink () && Machine.current () <> None then
        Cost.charge_cycles (instr_cycles * !batch);
      batch := 0
    end;
    t.executed <- t.executed + 1;
    let next = !pc + 1 in
    (match t.code.(!pc) with
    | Push v -> push v
    | Pop -> ignore (pop ())
    | Dup ->
        let v = pop () in
        push v;
        push v
    | Swap ->
        let a = pop () and b = pop () in
        push a;
        push b
    | Add ->
        let b = pop () and a = pop () in
        push (a + b)
    | Sub ->
        let b = pop () and a = pop () in
        push (a - b)
    | Mul ->
        let b = pop () and a = pop () in
        push (a * b)
    | Div ->
        let b = pop () and a = pop () in
        if b = 0 then raise (Vm_fault "division by zero");
        push (a / b)
    | Rem ->
        let b = pop () and a = pop () in
        if b = 0 then raise (Vm_fault "division by zero");
        push (a mod b)
    | Eq ->
        let b = pop () and a = pop () in
        push (if a = b then 1 else 0)
    | Lt ->
        let b = pop () and a = pop () in
        push (if a < b then 1 else 0)
    | Gt ->
        let b = pop () and a = pop () in
        push (if a > b then 1 else 0)
    | Not -> push (if pop () = 0 then 1 else 0)
    | Load n -> push t.globals.(n)
    | Store n -> t.globals.(n) <- pop ()
    | Jmp target -> pc := target - 1
    | Jz target -> if pop () = 0 then pc := target - 1
    | Call target ->
        if t.rsp >= Array.length t.rstack then raise (Vm_fault "call stack overflow");
        t.rstack.(t.rsp) <- next;
        t.rsp <- t.rsp + 1;
        pc := target - 1
    | Ret ->
        if t.rsp <= 0 then raise (Vm_fault "return without call");
        t.rsp <- t.rsp - 1;
        pc := t.rstack.(t.rsp) - 1
    | Loadb ->
        let addr = pop () in
        check_heap_access t addr;
        push (Char.code (Bytes.get t.heap addr))
    | Storeb ->
        let addr = pop () in
        let v = pop () in
        check_heap_access t addr;
        Bytes.set t.heap addr (Char.chr (v land 0xff))
    | Sys n ->
        if n = sys_putc then t.bindings.putc (Char.chr (pop () land 0xff))
        else if n = sys_print_int then
          String.iter t.bindings.putc (string_of_int (pop ()))
        else if n = sys_time then push (t.bindings.time_ns ())
        else if n = sys_send then begin
          let len = pop () in
          let addr = pop () in
          check_heap_access t addr;
          if addr + len > Bytes.length t.heap then raise (Vm_fault "send out of range");
          push (t.bindings.send t.heap ~pos:addr ~len)
        end
        else if n = sys_recv then begin
          let len = pop () in
          let addr = pop () in
          check_heap_access t addr;
          if addr + len > Bytes.length t.heap then raise (Vm_fault "recv out of range");
          push (t.bindings.recv t.heap ~pos:addr ~len)
        end
        else if n = sys_heap_size then push (Bytes.length t.heap)
        else raise (Vm_fault (Printf.sprintf "unknown syscall %d" n))
    | Halt -> halted := true);
    (* Jump instructions already placed pc one before their target. *)
    if not !halted then incr pc
  done;
  if t.sp > 0 then t.stack.(t.sp - 1) else 0

(* ---- bytecode encode/decode ---- *)

let opcode = function
  | Push _ -> 1
  | Pop -> 2
  | Dup -> 3
  | Swap -> 4
  | Add -> 5
  | Sub -> 6
  | Mul -> 7
  | Div -> 8
  | Rem -> 9
  | Eq -> 10
  | Lt -> 11
  | Gt -> 12
  | Not -> 13
  | Load _ -> 14
  | Store _ -> 15
  | Jmp _ -> 16
  | Jz _ -> 17
  | Call _ -> 18
  | Ret -> 19
  | Loadb -> 20
  | Storeb -> 21
  | Sys _ -> 22
  | Halt -> 23

let operand = function
  | Push v | Load v | Store v | Jmp v | Jz v | Call v | Sys v -> v
  | Pop | Dup | Swap | Add | Sub | Mul | Div | Rem | Eq | Lt | Gt | Not | Ret | Loadb
  | Storeb | Halt ->
      0

let encode code =
  let b = Bytes.create (4 + (5 * Array.length code)) in
  Bytes.set_int32_le b 0 0x4F564D31l (* "OVM1" *);
  Array.iteri
    (fun i ins ->
      Bytes.set b (4 + (5 * i)) (Char.chr (opcode ins));
      Bytes.set_int32_le b (5 + (5 * i)) (Int32.of_int (operand ins)))
    code;
  b

let decode b =
  if Bytes.length b < 4 || Bytes.get_int32_le b 0 <> 0x4F564D31l then
    Result.Error "bad bytecode magic"
  else if (Bytes.length b - 4) mod 5 <> 0 then Result.Error "truncated bytecode"
  else begin
    let n = (Bytes.length b - 4) / 5 in
    let bad = ref None in
    let code =
      Array.init n (fun i ->
          let op = Char.code (Bytes.get b (4 + (5 * i))) in
          let v = Int32.to_int (Bytes.get_int32_le b (5 + (5 * i))) in
          match op with
          | 1 -> Push v
          | 2 -> Pop
          | 3 -> Dup
          | 4 -> Swap
          | 5 -> Add
          | 6 -> Sub
          | 7 -> Mul
          | 8 -> Div
          | 9 -> Rem
          | 10 -> Eq
          | 11 -> Lt
          | 12 -> Gt
          | 13 -> Not
          | 14 -> Load v
          | 15 -> Store v
          | 16 -> Jmp v
          | 17 -> Jz v
          | 18 -> Call v
          | 19 -> Ret
          | 20 -> Loadb
          | 21 -> Storeb
          | 22 -> Sys v
          | 23 -> Halt
          | other ->
              bad := Some other;
              Halt)
    in
    match !bad with
    | Some op -> Result.Error (Printf.sprintf "unknown opcode %d" op)
    | None -> Ok code
  end

(* ---- assembler ---- *)

let assemble source =
  let lines = String.split_on_char '\n' source in
  let strip line =
    let line = match String.index_opt line ';' with Some i -> String.sub line 0 i | None -> line in
    String.trim line
  in
  let labels = Hashtbl.create 16 in
  (* First pass: record label addresses. *)
  let count = ref 0 in
  List.iter
    (fun raw ->
      let line = strip raw in
      if line <> "" then
        if String.length line > 1 && line.[String.length line - 1] = ':' then
          Hashtbl.replace labels (String.sub line 0 (String.length line - 1)) !count
        else incr count)
    lines;
  let err = ref None in
  let resolve arg =
    match int_of_string_opt arg with
    | Some v -> v
    | None -> (
        match Hashtbl.find_opt labels arg with
        | Some v -> v
        | None ->
            if !err = None then err := Some ("unknown label: " ^ arg);
            0)
  in
  let code = ref [] in
  List.iteri
    (fun lineno raw ->
      let line = strip raw in
      if line <> "" && not (String.length line > 1 && line.[String.length line - 1] = ':')
      then begin
        let parts =
          List.filter (fun s -> s <> "") (String.split_on_char ' ' line)
        in
        let emit ins = code := ins :: !code in
        let bad () =
          if !err = None then
            err := Some (Printf.sprintf "line %d: cannot parse %S" (lineno + 1) line)
        in
        match parts with
        | [ "push"; v ] -> emit (Push (resolve v))
        | [ "pop" ] -> emit Pop
        | [ "dup" ] -> emit Dup
        | [ "swap" ] -> emit Swap
        | [ "add" ] -> emit Add
        | [ "sub" ] -> emit Sub
        | [ "mul" ] -> emit Mul
        | [ "div" ] -> emit Div
        | [ "rem" ] -> emit Rem
        | [ "eq" ] -> emit Eq
        | [ "lt" ] -> emit Lt
        | [ "gt" ] -> emit Gt
        | [ "not" ] -> emit Not
        | [ "load"; v ] -> emit (Load (resolve v))
        | [ "store"; v ] -> emit (Store (resolve v))
        | [ "jmp"; v ] -> emit (Jmp (resolve v))
        | [ "jz"; v ] -> emit (Jz (resolve v))
        | [ "call"; v ] -> emit (Call (resolve v))
        | [ "ret" ] -> emit Ret
        | [ "loadb" ] -> emit Loadb
        | [ "storeb" ] -> emit Storeb
        | [ "sys"; v ] -> emit (Sys (resolve v))
        | [ "halt" ] -> emit Halt
        | _ -> bad ()
      end)
    lines;
  match !err with
  | Some msg -> Result.Error msg
  | None -> Ok (Array.of_list (List.rev !code))
