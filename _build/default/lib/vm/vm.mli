(** A small bytecode virtual machine — the reproduction's stand-in for the
    Kaffe JVM of Section 6.1.4.

    A stack machine with globals, a byte-addressable heap, call/return, and
    host syscalls bound by the embedding kernel (console, clock, socket
    send/receive).  What matters for the paper's measurements is faithful:
    interpretation costs virtual CPU cycles per instruction, heap/host
    transfers cost an extra copy (the "Java heap" copy), and null-pointer
    accesses are caught through the kernel trap path using the x86 debug
    registers (Section 6.2.4) rather than by per-access software checks. *)

type instr =
  | Push of int
  | Pop
  | Dup
  | Swap
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | Eq
  | Lt
  | Gt
  | Not
  | Load of int  (** push global[n] *)
  | Store of int  (** pop into global[n] *)
  | Jmp of int
  | Jz of int  (** pop; jump when zero *)
  | Call of int
  | Ret
  | Loadb  (** pop addr; push heap byte *)
  | Storeb  (** pop addr, pop value; store heap byte *)
  | Sys of int  (** host call, see {!syscalls} *)
  | Halt

(** Syscall numbers: 0 putc (pop char), 1 print_int (pop), 2 time_ns
    (push), 3 sock_send (pop len, addr; push sent), 4 sock_recv (pop len,
    addr; push received), 5 heap_size (push). *)
val sys_putc : int

val sys_print_int : int
val sys_time : int
val sys_send : int
val sys_recv : int
val sys_heap_size : int

(** Host bindings; default implementations fail with [Error.Notsup]. *)
type bindings = {
  putc : char -> unit;
  send : bytes -> pos:int -> len:int -> int;
  recv : bytes -> pos:int -> len:int -> int;
  time_ns : unit -> int;
}

val null_bindings : bindings

type t

exception Vm_fault of string
exception Null_pointer of int (* the faulting address *)

(** [create ?heap_size ?traps ~bindings program] — when [traps] is given,
    heap page 0 is armed with a debug-register breakpoint and null accesses
    go through the kernel trap path before surfacing as [Null_pointer]. *)
val create :
  ?heap_size:int -> ?globals:int -> ?traps:Trap.table -> bindings:bindings -> instr array -> t

(** [run ?fuel t] executes until [Halt] (returns the top of stack, or 0 if
    empty).  Raises [Vm_fault] on stack/pc errors and [Null_pointer] on
    trapped accesses; [fuel] bounds instruction count (default 50M). *)
val run : ?fuel:int -> t -> int

val heap : t -> bytes
val instructions_executed : t -> int

(** {2 Bytecode files} (what a "network computer" loads from a boot
    module) *)

val encode : instr array -> bytes
val decode : bytes -> (instr array, string) result

(** {2 Assembler} — one instruction per line, [;] comments, [label:]
    definitions, labels as jump/call targets. *)
val assemble : string -> (instr array, string) result
