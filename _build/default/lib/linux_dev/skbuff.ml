(* ENCAPSULATED LEGACY CODE — Linux 2.0.29 style (Section 4.7).
 *
 * This module reproduces Linux's internal network packet buffer, the
 * sk_buff, whose "implementation details are thoroughly known throughout"
 * the driver code (Section 4.7.3): a single contiguous data area with
 * headroom and tailroom, adjusted with reserve/put/push/pull.  It is used
 * by the encapsulated drivers in this library and by the Linux inet stack
 * baseline; nothing outside those components and their glue may see it.
 * The glue code translates between sk_buffs and the OSKit's bufio
 * interface without copying whenever the layout allows.
 *
 * (In the C OSKit this file would live under linux/src/, byte-identical to
 * the donor tree; here "unmodified" means we preserve the donor's
 * abstractions and API shape.)
 *)

type sk_buff = {
  skb_data : bytes; (* the contiguous allocation *)
  mutable head : int; (* start of valid data within skb_data *)
  mutable len : int; (* bytes of valid data *)
  mutable protocol : int; (* ethertype, set by eth_type_trans *)
  mutable dev_name : string;
}

exception Skb_over_panic
(* Linux calls panic(); an exception is our machine check. *)

let alloc_skb size =
  Cost.charge_alloc ();
  { skb_data = Bytes.create size; head = 0; len = 0; protocol = 0; dev_name = "" }

(* Wrap an existing buffer without copying (used by the glue's "fake
   skbuff" trick, Section 4.7.3, and by DMA completion). *)
let skb_wrap data =
  { skb_data = data; head = 0; len = Bytes.length data; protocol = 0; dev_name = "" }

let skb_headroom skb = skb.head
let skb_tailroom skb = Bytes.length skb.skb_data - skb.head - skb.len

let skb_reserve skb n =
  if skb.len <> 0 || n > skb_tailroom skb then raise Skb_over_panic;
  skb.head <- skb.head + n

(* Append n bytes; returns the offset (within skb_data) of the new area. *)
let skb_put skb n =
  if n > skb_tailroom skb then raise Skb_over_panic;
  let at = skb.head + skb.len in
  skb.len <- skb.len + n;
  at

(* Prepend n bytes; returns the new start offset. *)
let skb_push skb n =
  if n > skb.head then raise Skb_over_panic;
  skb.head <- skb.head - n;
  skb.len <- skb.len + n;
  skb.head

(* Drop n bytes from the front; returns the new start offset. *)
let skb_pull skb n =
  if n > skb.len then raise Skb_over_panic;
  skb.head <- skb.head + n;
  skb.len <- skb.len - n;
  skb.head

let skb_trim skb n = if n < skb.len then skb.len <- n

(* Copy out the valid data (costed: this is a real memcpy). *)
let skb_copy_out skb =
  Cost.charge_copy skb.len;
  Bytes.sub skb.skb_data skb.head skb.len

(* Copy user/foreign data into the tail (memcpy_fromfs in the donor). *)
let skb_copy_in skb src src_pos n =
  let at = skb_put skb n in
  Cost.charge_copy n;
  Bytes.blit src src_pos skb.skb_data at n
