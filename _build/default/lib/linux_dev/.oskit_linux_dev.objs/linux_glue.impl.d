lib/linux_dev/linux_glue.ml: Bytes Com Cost Disk Error Fdev Iid Io_if Lazy Linux_emu Linux_eth_drv Linux_ide_drv List Result Skbuff
