lib/linux_dev/linux_ide_drv.ml: Bus Bytes Char Cost Disk Error Linux_emu List Osenv Queue Result String
