lib/linux_dev/skbuff.ml: Bytes Cost
