lib/linux_dev/linux_glue.mli: Error Io_if Linux_eth_drv Osenv Skbuff
