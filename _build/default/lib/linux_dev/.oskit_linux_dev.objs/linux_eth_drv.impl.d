lib/linux_dev/linux_eth_drv.ml: Bus Bytes Char Cost Error List Nic Osenv Result Skbuff
