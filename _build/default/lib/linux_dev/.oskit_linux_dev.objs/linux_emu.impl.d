lib/linux_dev/linux_emu.ml: Fun List Lmm Machine Option Osenv Sleep_record Thread
