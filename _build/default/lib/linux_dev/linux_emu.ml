(* GLUE — emulation of the Linux kernel environment (Sections 4.7.5, 4.7.6).
 *
 * The encapsulated driver code is riddled with assumptions about the Linux
 * environment: a `current' task pointer, sleep_on/wake_up wait queues,
 * jiffies, kmalloc, cli/sti.  This module manufactures those abstractions
 * on demand from the much simpler services the client OS provides (sleep
 * records, the osenv allocator, machine time), completely hiding them from
 * the client.
 *)

type task_struct = { comm : string; pid : int }

let next_fake_pid = ref 1000
let current_task : task_struct option ref = ref None

(* "At every entrypoint into the component from the outside, the glue code
   creates and initializes a minimal temporary process structure ... and
   automatically disappears when the call completes."  The saved value is
   restored so concurrent activities during blocking calls cannot trash
   it. *)
let with_current f =
  let saved = !current_task in
  let comm = Option.value (Thread.self_name ()) ~default:"oskit" in
  incr next_fake_pid;
  current_task := Some { comm; pid = !next_fake_pid };
  Fun.protect ~finally:(fun () -> current_task := saved) f

let current () =
  match !current_task with
  | Some t -> t
  | None -> invalid_arg "linux: `current' accessed outside a component entry"

(* Linux 2.0 wait queues over OSKit sleep records. *)
type wait_queue = { mutable waiters : Sleep_record.t list }

let wait_queue_head () = { waiters = [] }

let sleep_on q =
  let r = Sleep_record.create ~name:"linux.waitq" () in
  q.waiters <- q.waiters @ [ r ];
  Sleep_record.sleep r;
  q.waiters <- List.filter (fun x -> x != r) q.waiters

let wake_up q = List.iter Sleep_record.wakeup q.waiters

(* jiffies: Linux 2.0 ticked at 100 Hz. *)
let hz = 100

let jiffies machine = Machine.now machine / (1_000_000_000 / hz)

(* kmalloc backed by the osenv allocator; GFP_DMA maps to the <16 MB
   constraint. *)
let kmalloc osenv ~size ~dma =
  let flags = if dma then Lmm.flag_low_16mb else 0 in
  Osenv.mem_alloc osenv ~size ~flags ~align_bits:4

let kfree osenv ~addr ~size = Osenv.mem_free osenv ~addr ~size
