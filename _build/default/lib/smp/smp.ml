type t = { machine : Machine.t; ncpus : int }

let init ?(ncpus = 1) machine =
  if ncpus < 1 then invalid_arg "Smp.init: ncpus";
  { machine; ncpus }

let num_cpus t = t.ncpus
let cpu_number _ = 0

type 'a percpu = 'a array

let percpu t ~init = Array.init t.ncpus init
let get t p = p.(cpu_number t)
let get_for p ~cpu = p.(cpu)

type spinlock = { name : string; mutable held : bool; mutable contentions : int }

let spinlock ?(name = "spinlock") () = { name; held = false; contentions = 0 }

let spin_lock l =
  if l.held then begin
    (* On the uniprocessor testbed a contended spin can never clear:
       spinning would hang the simulation, so it is reported as the bug it
       is. *)
    l.contentions <- l.contentions + 1;
    invalid_arg ("Smp.spin_lock: deadlock on " ^ l.name)
  end;
  Cost.charge_cycles 20;
  l.held <- true

let spin_unlock l =
  if not l.held then invalid_arg ("Smp.spin_unlock: not held: " ^ l.name);
  l.held <- false

let spin_trylock l =
  if l.held then begin
    l.contentions <- l.contentions + 1;
    false
  end
  else begin
    Cost.charge_cycles 20;
    l.held <- true;
    true
  end

let spin_contentions l = l.contentions

let with_spinlock l f =
  spin_lock l;
  Fun.protect ~finally:(fun () -> spin_unlock l) f

let broadcast t f =
  for cpu = 1 to t.ncpus - 1 do
    f cpu
  done
