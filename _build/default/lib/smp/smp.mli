(** Multiprocessor support (the paper's [smp] library).

    On the simulated uniprocessor testbed this supplies the *interfaces*
    SMP-aware clients program against: logical CPU enumeration, per-CPU
    data, spin locks with contention accounting, and a broadcast
    ("IPI") hook.  Lock discipline is fully exercised even though the
    process level is cooperatively scheduled — the paper's encapsulated
    components use exactly these locks to become usable in multiprocessor
    kernels (Section 4.7.4). *)

type t

(** [init machine ~ncpus] — [ncpus] logical CPUs (default 1). *)
val init : ?ncpus:int -> Machine.t -> t

val num_cpus : t -> int

(** The CPU the caller runs on (always 0 on the simulated testbed — the
    API matches the real library). *)
val cpu_number : t -> int

(** {2 Per-CPU data} *)

type 'a percpu

val percpu : t -> init:(int -> 'a) -> 'a percpu
val get : t -> 'a percpu -> 'a
val get_for : 'a percpu -> cpu:int -> 'a

(** {2 Spin locks} *)

type spinlock

val spinlock : ?name:string -> unit -> spinlock

(** [spin_lock l] — panics (raises) on self-deadlock, which on a
    uniprocessor is always a bug. *)
val spin_lock : spinlock -> unit

val spin_unlock : spinlock -> unit
val spin_trylock : spinlock -> bool
val spin_contentions : spinlock -> int

(** [with_spinlock l f] *)
val with_spinlock : spinlock -> (unit -> 'a) -> 'a

(** {2 Cross-CPU calls} *)

(** [broadcast t f] runs [f cpu] for every other CPU (the IPI analogue). *)
val broadcast : t -> (int -> unit) -> unit
