bench/netbench.ml: Bsd_socket Bytes Clientos Cost Error Fdev Io_if Kclock Linux_inet Machine Oskit Posix Vm Wire
