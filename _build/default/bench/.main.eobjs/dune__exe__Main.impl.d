bench/main.ml: Amm Analyze Array Bechamel Benchmark Bsd_malloc Cost Filename Hashtbl List Lmm Loc_table Malloc Measure Netbench Option Printf Staged Sys Test Time Toolkit Unix
