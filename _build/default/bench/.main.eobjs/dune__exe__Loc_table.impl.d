bench/loc_table.ml: Array Buffer Filename List Option Printf String Sys
