bench/main.mli:
