(* COM object model: GUIDs, typed query/narrowing, refcount lifecycle,
   registry. *)

type greeter = { g_unknown : Com.unknown; greet : unit -> string }
type counter = { c_unknown : Com.unknown; incr_ : unit -> int }

let greeter_iid : greeter Iid.t = Iid.declare "test.greeter"
let counter_iid : counter Iid.t = Iid.declare "test.counter"

let make_object ?on_last_release () =
  let count = ref 0 in
  let rec greeter_view () = { g_unknown = unknown (); greet = (fun () -> "hello") }
  and counter_view () =
    { c_unknown = unknown ();
      incr_ =
        (fun () ->
          incr count;
          !count) }
  and obj =
    lazy
      (Com.create ?on_last_release (fun _ ->
           [ Iid.B (greeter_iid, fun () -> greeter_view ());
             Iid.B (counter_iid, fun () -> counter_view ()) ]))
  and unknown () = Lazy.force obj in
  unknown ()

let test_guid_roundtrip () =
  let g = Guid.make 0x4aa7dfe1l 0x7c74 0x11cf "\xb5\x00\x08\x00\x09\x53\xad\xc2" in
  Alcotest.(check string) "render" "4aa7dfe1-7c74-11cf-b500-08000953adc2" (Guid.to_string g);
  Alcotest.(check bool) "equal self" true (Guid.equal g g)

let test_guid_of_name () =
  let a = Guid.of_name "oskit.blkio" and b = Guid.of_name "oskit.bufio" in
  Alcotest.(check bool) "distinct names distinct guids" false (Guid.equal a b);
  Alcotest.(check bool) "deterministic" true (Guid.equal a (Guid.of_name "oskit.blkio"))

let test_guid_validation () =
  Alcotest.check_raises "short d4" (Invalid_argument "Guid.make: d4 must be 8 bytes")
    (fun () -> ignore (Guid.make 0l 0 0 "short"))

let test_query_narrowing () =
  let obj = make_object () in
  (match Com.query obj greeter_iid with
  | Ok g -> Alcotest.(check string) "greeter works" "hello" (g.greet ())
  | Error _ -> Alcotest.fail "query greeter failed");
  match Com.query obj counter_iid with
  | Ok c ->
      Alcotest.(check int) "counter works" 1 (c.incr_ ());
      Alcotest.(check int) "state shared" 2 (c.incr_ ())
  | Error _ -> Alcotest.fail "query counter failed"

let test_query_missing () =
  let obj = make_object () in
  let other : unit Iid.t = Iid.declare "test.absent" in
  match Com.query obj other with
  | Ok _ -> Alcotest.fail "should not implement absent interface"
  | Error e -> Alcotest.(check bool) "E_NOINTERFACE" true (Error.equal e Error.No_interface)

let test_refcount_lifecycle () =
  let destroyed = ref false in
  let obj = make_object ~on_last_release:(fun () -> destroyed := true) () in
  Alcotest.(check int) "initial count" 1 (Com.refcount obj);
  (* Each successful query takes a reference. *)
  ignore (Com.query obj greeter_iid);
  Alcotest.(check int) "query addrefs" 2 (Com.refcount obj);
  ignore (obj.Com.release ());
  ignore (obj.Com.release ());
  Alcotest.(check bool) "destructor ran" true !destroyed;
  Alcotest.check_raises "use after free" (Com.Use_after_free "com object") (fun () ->
      ignore (Com.query obj greeter_iid))

let test_failed_query_no_addref () =
  let obj = make_object () in
  let other : unit Iid.t = Iid.declare "test.absent2" in
  ignore (Com.query obj other);
  Alcotest.(check int) "failed query does not addref" 1 (Com.refcount obj)

let test_with_ref () =
  let obj = make_object () in
  Com.with_ref obj (fun () ->
      Alcotest.(check int) "held" 2 (Com.refcount obj));
  Alcotest.(check int) "released" 1 (Com.refcount obj);
  (try Com.with_ref obj (fun () -> failwith "boom") with Failure _ -> ());
  Alcotest.(check int) "released on exception" 1 (Com.refcount obj)

let test_iid_same_witness () =
  let a : int Iid.t = Iid.declare "test.int1" in
  let b : int Iid.t = Iid.declare "test.int2" in
  Alcotest.(check bool) "same value matches" true (Iid.same_witness a a <> None);
  Alcotest.(check bool) "distinct iids never match even at same type" true
    (Iid.same_witness a b = None)

let test_registry () =
  let reg = Registry.create () in
  let obj1 = make_object () and obj2 = make_object () in
  Registry.register reg greeter_iid obj1;
  Registry.register reg greeter_iid obj2;
  Alcotest.(check int) "two greeters" 2 (List.length (Registry.lookup reg greeter_iid));
  Alcotest.(check bool) "most recent first" true
    (match Registry.lookup_first reg greeter_iid with Some _ -> true | None -> false);
  Registry.unregister reg greeter_iid obj1;
  Alcotest.(check int) "one left" 1 (List.length (Registry.lookup reg greeter_iid));
  Registry.clear reg;
  Alcotest.(check int) "cleared" 0 (List.length (Registry.lookup reg greeter_iid))

let test_registry_refcounts () =
  let reg = Registry.create () in
  let obj = make_object () in
  Registry.register reg greeter_iid obj;
  Alcotest.(check int) "registry holds a ref" 2 (Com.refcount obj);
  Registry.unregister reg greeter_iid obj;
  Alcotest.(check int) "dropped on unregister" 1 (Com.refcount obj)

let test_error_roundtrip () =
  List.iter
    (fun e ->
      Alcotest.(check bool)
        ("errno roundtrip " ^ Error.to_string e)
        true
        (Error.equal e (Error.of_errno (Error.errno e))))
    [ Error.Inval; Error.Noent; Error.Nomem; Error.Connreset; Error.Timedout; Error.Rofs ]

let test_bufio_of_bytes () =
  let b = Bytes.of_string "hello, world" in
  let io = Io_if.bufio_of_bytes b in
  Alcotest.(check int) "size" 12 (io.Io_if.buf_size ());
  (match io.Io_if.buf_map () with
  | Some (backing, start) ->
      Alcotest.(check bool) "map is zero-copy" true (backing == b && start = 0)
  | None -> Alcotest.fail "map should succeed");
  let out = Bytes.create 5 in
  (match io.Io_if.buf_read ~buf:out ~pos:0 ~offset:7 ~amount:5 with
  | Ok 5 -> Alcotest.(check string) "read window" "world" (Bytes.to_string out)
  | _ -> Alcotest.fail "read failed");
  Alcotest.(check string) "contents" "hello, world"
    (Bytes.to_string (Io_if.bufio_contents io))

let suite =
  [ Alcotest.test_case "guid roundtrip" `Quick test_guid_roundtrip;
    Alcotest.test_case "guid of_name" `Quick test_guid_of_name;
    Alcotest.test_case "guid validation" `Quick test_guid_validation;
    Alcotest.test_case "query narrowing" `Quick test_query_narrowing;
    Alcotest.test_case "query missing interface" `Quick test_query_missing;
    Alcotest.test_case "refcount lifecycle" `Quick test_refcount_lifecycle;
    Alcotest.test_case "failed query no addref" `Quick test_failed_query_no_addref;
    Alcotest.test_case "with_ref" `Quick test_with_ref;
    Alcotest.test_case "iid witnesses" `Quick test_iid_same_witness;
    Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "registry refcounts" `Quick test_registry_refcounts;
    Alcotest.test_case "error errno roundtrip" `Quick test_error_roundtrip;
    Alcotest.test_case "bufio_of_bytes" `Quick test_bufio_of_bytes ]
