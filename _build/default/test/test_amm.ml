(* AMM: interval-map invariants (exhaustive, non-overlapping, coalesced),
   find/allocate, and a qcheck model test against a naive array of
   attributes. *)

let test_initial () =
  let amm = Amm.create ~lo:0 ~hi:1000 ~flags:Amm.free in
  Alcotest.(check (list (triple int int int))) "one entry" [ 0, 1000, Amm.free ]
    (Amm.entries amm)

let test_set_and_coalesce () =
  let amm = Amm.create ~lo:0 ~hi:1000 ~flags:Amm.free in
  Amm.set amm ~addr:100 ~size:100 ~flags:Amm.allocated;
  Amm.set amm ~addr:200 ~size:100 ~flags:Amm.allocated;
  Alcotest.(check (list (triple int int int)))
    "adjacent equal attributes coalesce"
    [ 0, 100, Amm.free; 100, 200, Amm.allocated; 300, 700, Amm.free ]
    (Amm.entries amm);
  Amm.set amm ~addr:100 ~size:200 ~flags:Amm.free;
  Alcotest.(check (list (triple int int int))) "back to one" [ 0, 1000, Amm.free ]
    (Amm.entries amm)

let test_get () =
  let amm = Amm.create ~lo:10 ~hi:20 ~flags:7 in
  Alcotest.(check int) "get inside" 7 (Amm.get amm 15);
  Alcotest.check_raises "get below" (Invalid_argument "Amm.get: out of range") (fun () ->
      ignore (Amm.get amm 9));
  Alcotest.check_raises "get at hi" (Invalid_argument "Amm.get: out of range") (fun () ->
      ignore (Amm.get amm 20))

let test_allocate_deallocate () =
  let amm = Amm.create ~lo:0 ~hi:4096 ~flags:Amm.free in
  let a = Option.get (Amm.allocate amm ~size:100 ()) in
  let b = Option.get (Amm.allocate amm ~size:100 ()) in
  Alcotest.(check bool) "disjoint" true (b >= a + 100 || a >= b + 100);
  Amm.deallocate amm ~addr:a ~size:100;
  let c = Option.get (Amm.allocate amm ~size:50 ()) in
  Alcotest.(check int) "first fit reuses the hole" a c

let test_allocate_aligned () =
  let amm = Amm.create ~lo:0 ~hi:65536 ~flags:Amm.free in
  ignore (Amm.allocate amm ~size:10 ());
  match Amm.allocate amm ~size:100 ~align_bits:8 () with
  | Some addr -> Alcotest.(check int) "256-aligned" 0 (addr land 255)
  | None -> Alcotest.fail "aligned allocate failed"

let test_allocate_full () =
  let amm = Amm.create ~lo:0 ~hi:100 ~flags:Amm.free in
  ignore (Amm.allocate amm ~size:100 ());
  Alcotest.(check bool) "no space left" true (Amm.allocate amm ~size:1 () = None)

let test_find_gen_mask () =
  let amm = Amm.create ~lo:0 ~hi:1000 ~flags:0b0011 in
  Amm.set amm ~addr:500 ~size:100 ~flags:0b0111;
  (* Look for entries with bit 2 set, ignoring other bits. *)
  match Amm.find_gen amm ~size:50 ~flags:0b0100 ~mask:0b0100 () with
  | Some addr -> Alcotest.(check int) "found masked range" 500 addr
  | None -> Alcotest.fail "find_gen failed"

let test_find_gen_spanning_run () =
  (* A run of multiple entries with different flags that all satisfy the
     mask must count as one contiguous range. *)
  let amm = Amm.create ~lo:0 ~hi:300 ~flags:0b01 in
  Amm.set amm ~addr:100 ~size:100 ~flags:0b11;
  (* bit0 set everywhere; ask for 250 bytes of bit0. *)
  match Amm.find_gen amm ~size:250 ~flags:0b01 ~mask:0b01 () with
  | Some addr -> Alcotest.(check int) "run spans entries" 0 addr
  | None -> Alcotest.fail "spanning run not found"

let test_modify () =
  let amm = Amm.create ~lo:0 ~hi:100 ~flags:0 in
  Amm.modify amm ~addr:25 ~size:50 (fun f -> f lor 8);
  Alcotest.(check int) "untouched before" 0 (Amm.get amm 10);
  Alcotest.(check int) "modified middle" 8 (Amm.get amm 50);
  Alcotest.(check int) "untouched after" 0 (Amm.get amm 80)

let test_bytes_matching () =
  let amm = Amm.create ~lo:0 ~hi:1000 ~flags:Amm.free in
  Amm.set amm ~addr:0 ~size:300 ~flags:Amm.allocated;
  Amm.set amm ~addr:600 ~size:100 ~flags:Amm.reserved;
  Alcotest.(check int) "allocated" 300 (Amm.bytes_matching amm ~flags:Amm.allocated ~mask:max_int);
  Alcotest.(check int) "free" 600 (Amm.bytes_matching amm ~flags:Amm.free ~mask:max_int)

(* Model-based property: AMM agrees with a plain attribute array under
   random set operations, and its entries stay exhaustive, sorted, and
   coalesced. *)
let prop_model =
  QCheck.Test.make ~name:"amm: agrees with naive model; entries well-formed" ~count:200
    QCheck.(list (triple (int_range 0 255) (int_range 0 256) (int_range 0 3)))
    (fun ops ->
      let hi = 256 in
      let amm = Amm.create ~lo:0 ~hi ~flags:0 in
      let model = Array.make hi 0 in
      List.iter
        (fun (addr, size, flags) ->
          let size = min size (hi - addr) in
          if size > 0 then begin
            Amm.set amm ~addr ~size ~flags;
            Array.fill model addr size flags
          end)
        ops;
      (* Pointwise agreement. *)
      let agree = ref true in
      for i = 0 to hi - 1 do
        if Amm.get amm i <> model.(i) then agree := false
      done;
      (* Well-formedness. *)
      let entries = Amm.entries amm in
      let rec well_formed cursor = function
        | [] -> cursor = hi
        | (addr, size, _) :: rest -> addr = cursor && size > 0 && well_formed (addr + size) rest
      in
      let rec coalesced = function
        | (_, _, f1) :: ((_, _, f2) :: _ as rest) -> f1 <> f2 && coalesced rest
        | _ -> true
      in
      !agree && well_formed 0 entries && coalesced entries)

let suite =
  [ Alcotest.test_case "initial entry" `Quick test_initial;
    Alcotest.test_case "set and coalesce" `Quick test_set_and_coalesce;
    Alcotest.test_case "get bounds" `Quick test_get;
    Alcotest.test_case "allocate/deallocate" `Quick test_allocate_deallocate;
    Alcotest.test_case "allocate aligned" `Quick test_allocate_aligned;
    Alcotest.test_case "allocate until full" `Quick test_allocate_full;
    Alcotest.test_case "find_gen with mask" `Quick test_find_gen_mask;
    Alcotest.test_case "find_gen spanning run" `Quick test_find_gen_spanning_run;
    Alcotest.test_case "modify" `Quick test_modify;
    Alcotest.test_case "bytes_matching" `Quick test_bytes_matching;
    QCheck_alcotest.to_alcotest prop_model ]
