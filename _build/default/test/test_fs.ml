(* The NetBSD-derived file system: buffer cache behaviour, FFS operations
   through the COM interfaces and the POSIX layer, crash-free remount, a
   qcheck model test, and fsread/diskpart interop. *)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "fs error: %s" (Error.to_string e)

let mem_dev ?(mb = 4) () = Mem_blkio.make ~bytes:(mb * 1024 * 1024) ()

let with_posix_fs f =
  let dev = mem_dev () in
  let root = ok (Fs_glue.newfs dev) in
  let env = Posix.create_env () in
  Posix.set_root env (Some root);
  f env root dev

let write_file env path content =
  let fd = ok (Posix.open_ env path (Posix.o_creat lor Posix.o_rdwr lor Posix.o_trunc)) in
  let b = Bytes.of_string content in
  let n = ok (Posix.write env fd b ~pos:0 ~len:(Bytes.length b)) in
  Alcotest.(check int) ("write " ^ path) (Bytes.length b) n;
  ok (Posix.close env fd)

let read_file env path =
  let fd = ok (Posix.open_ env path Posix.o_rdonly) in
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let rec loop () =
    match ok (Posix.read env fd chunk ~pos:0 ~len:1024) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        loop ()
  in
  loop ();
  ok (Posix.close env fd);
  Buffer.contents buf

let test_create_read_write () =
  with_posix_fs (fun env _ _ ->
      write_file env "/hello.txt" "hello file system";
      Alcotest.(check string) "read back" "hello file system" (read_file env "/hello.txt"))

let test_directories () =
  with_posix_fs (fun env _ _ ->
      ok (Posix.mkdir env "/a");
      ok (Posix.mkdir env "/a/b");
      write_file env "/a/b/deep.txt" "nested";
      Alcotest.(check string) "nested read" "nested" (read_file env "/a/b/deep.txt");
      Alcotest.(check (list string)) "ls /a" [ "b" ] (ok (Posix.readdir env "/a"));
      (match Posix.rmdir env "/a" with
      | Error Error.Notempty -> ()
      | _ -> Alcotest.fail "rmdir non-empty must fail");
      ok (Posix.unlink env "/a/b/deep.txt");
      ok (Posix.rmdir env "/a/b");
      ok (Posix.rmdir env "/a");
      Alcotest.(check (list string)) "root empty again" [] (ok (Posix.readdir env "/")))

let test_big_file_indirect () =
  with_posix_fs (fun env _ _ ->
      (* 300 KB crosses from direct (48 KB) well into the indirect block. *)
      let size = 300 * 1024 in
      let content = String.init size (fun i -> Char.chr ((i * 7) land 0xff)) in
      write_file env "/big" content;
      let back = read_file env "/big" in
      Alcotest.(check int) "size" size (String.length back);
      Alcotest.(check string) "content hash" (Digest.to_hex (Digest.string content))
        (Digest.to_hex (Digest.string back)))

let test_double_indirect () =
  with_posix_fs (fun env _ _ ->
      (* > 48KB + 4MB would exceed the device; use a sparse write instead:
         one byte far into the double-indirect range. *)
      let far = (12 + 1024 + 5) * 4096 + 17 in
      let fd = ok (Posix.open_ env "/sparse" (Posix.o_creat lor Posix.o_rdwr)) in
      let _ = ok (Posix.lseek env fd ~offset:far `Set) in
      let one = Bytes.of_string "Z" in
      let _ = ok (Posix.write env fd one ~pos:0 ~len:1) in
      let st = ok (Posix.fstat env fd) in
      Alcotest.(check int) "sparse size" (far + 1) st.Io_if.st_size;
      let _ = ok (Posix.lseek env fd ~offset:far `Set) in
      let buf = Bytes.create 1 in
      let _ = ok (Posix.read env fd buf ~pos:0 ~len:1) in
      Alcotest.(check string) "far byte" "Z" (Bytes.to_string buf);
      (* Holes read as zeros. *)
      let _ = ok (Posix.lseek env fd ~offset:4096 `Set) in
      let _ = ok (Posix.read env fd buf ~pos:0 ~len:1) in
      Alcotest.(check string) "hole reads zero" "\000" (Bytes.to_string buf);
      ok (Posix.close env fd))

let test_truncate_frees_blocks () =
  let dev = mem_dev () in
  let fs = Ffs.newfs dev in
  let root = Ffs.root fs in
  let node = Ffs.create_file fs root ~name:"t" in
  let free0 = Ffs.free_blocks fs in
  let data = Bytes.make (100 * 1024) 'T' in
  ignore (Ffs.write fs node ~off:0 ~len:(Bytes.length data) ~src:data ~src_pos:0);
  Alcotest.(check bool) "blocks consumed" true (Ffs.free_blocks fs < free0);
  Ffs.truncate fs node 0;
  Alcotest.(check int) "all blocks back" free0 (Ffs.free_blocks fs);
  Alcotest.(check int) "size zero" 0 node.Ffs.i_size

let test_unlink_frees () =
  let dev = mem_dev () in
  let fs = Ffs.newfs dev in
  let root = Ffs.root fs in
  let free0 = Ffs.free_blocks fs in
  let node = Ffs.create_file fs root ~name:"gone" in
  let data = Bytes.make 8192 'x' in
  ignore (Ffs.write fs node ~off:0 ~len:8192 ~src:data ~src_pos:0);
  Ffs.unlink fs root ~name:"gone";
  Alcotest.(check int) "space reclaimed" free0 (Ffs.free_blocks fs);
  Alcotest.(check bool) "name gone" true (Ffs.dir_lookup fs root "gone" = None)

let test_rename () =
  with_posix_fs (fun env root _ ->
      write_file env "/old" "payload";
      ok (Posix.mkdir env "/dir");
      (* Rename across directories through the COM interface. *)
      (match ok (Posix.lookup env "/dir") with
      | Io_if.Node_dir d ->
          (match root.Io_if.d_rename "old" d "new" with
          | Ok () -> ()
          | Error e -> Alcotest.failf "rename: %s" (Error.to_string e))
      | Io_if.Node_file _ -> Alcotest.fail "/dir is a file?");
      Alcotest.(check string) "content moved" "payload" (read_file env "/dir/new");
      match Posix.lookup env "/old" with
      | Error Error.Noent -> ()
      | _ -> Alcotest.fail "old name must be gone")

let test_persistence_across_remount () =
  let dev = mem_dev () in
  (let root = ok (Fs_glue.newfs dev) in
   let env = Posix.create_env () in
   Posix.set_root env (Some root);
   write_file env "/persist" "survives remount";
   ok (Posix.mkdir env "/d");
   write_file env "/d/inner" "inner data";
   ok (Fs_glue.sync_all root));
  (* Mount the same device afresh: everything must still be there. *)
  let root2 = ok (Fs_glue.mount dev) in
  let env2 = Posix.create_env () in
  Posix.set_root env2 (Some root2);
  Alcotest.(check string) "file survived" "survives remount" (read_file env2 "/persist");
  Alcotest.(check string) "nested survived" "inner data" (read_file env2 "/d/inner")

let test_errors () =
  with_posix_fs (fun env _ _ ->
      (match Posix.open_ env "/absent" Posix.o_rdonly with
      | Error Error.Noent -> ()
      | _ -> Alcotest.fail "ENOENT expected");
      write_file env "/f" "x";
      (match Posix.open_ env "/f/child" Posix.o_rdonly with
      | Error Error.Notdir -> ()
      | _ -> Alcotest.fail "ENOTDIR expected");
      (match Posix.mkdir env "/f" with
      | Error Error.Exist -> ()
      | _ -> Alcotest.fail "EEXIST expected");
      (match Posix.unlink env "/nope" with
      | Error Error.Noent -> ()
      | _ -> Alcotest.fail "unlink ENOENT expected");
      let long = String.make 100 'n' in
      match Posix.open_ env ("/" ^ long) (Posix.o_creat lor Posix.o_rdwr) with
      | Error Error.Nametoolong -> ()
      | _ -> Alcotest.fail "ENAMETOOLONG expected")

let test_buffer_cache () =
  let dev = mem_dev () in
  let bc = Buf.create ~bsize:4096 ~max_bufs:4 dev in
  let b0 = Buf.bread bc 0 in
  Bytes.set b0.Buf.b_data 0 'A';
  Buf.bdwrite b0;
  Buf.brelse b0;
  (* Re-read hits the cache. *)
  let b0' = Buf.bread bc 0 in
  Alcotest.(check char) "cache hit sees dirty data" 'A' (Bytes.get b0'.Buf.b_data 0);
  Buf.brelse b0';
  let _, _, hits = Buf.stats bc in
  Alcotest.(check bool) "hit counted" true (hits >= 1);
  (* Touch enough blocks to force eviction of the dirty one. *)
  for i = 1 to 8 do
    Buf.brelse (Buf.bread bc i)
  done;
  (* The delayed write must have reached the device. *)
  let probe = Bytes.create 1 in
  ignore (dev.Io_if.bio_read ~buf:probe ~pos:0 ~offset:0 ~amount:1);
  Alcotest.(check string) "dirty block flushed on eviction" "A" (Bytes.to_string probe)

(* Model test: random file operations agree with a Hashtbl-backed model. *)
let prop_fs_model =
  QCheck.Test.make ~name:"ffs: random ops agree with model" ~count:30
    QCheck.(
      list
        (triple (int_range 0 3) (int_range 0 5) (string_of_size (QCheck.Gen.int_range 0 300))))
    (fun ops ->
      let dev = mem_dev ~mb:2 () in
      let fs = Ffs.newfs dev in
      let root = Ffs.root fs in
      let model : (string, string) Hashtbl.t = Hashtbl.create 8 in
      let name i = "f" ^ string_of_int i in
      List.iter
        (fun (action, idx, payload) ->
          let nm = name idx in
          match action with
          | 0 ->
              (* create/overwrite *)
              (try
                 let node =
                   match Ffs.dir_lookup fs root nm with
                   | Some (_, ino) -> Ffs.iget fs ino
                   | None -> Ffs.create_file fs root ~name:nm
                 in
                 Ffs.truncate fs node 0;
                 ignore
                   (Ffs.write fs node ~off:0 ~len:(String.length payload)
                      ~src:(Bytes.of_string payload) ~src_pos:0);
                 Hashtbl.replace model nm payload
               with Ffs.Fs_error _ -> ())
          | 1 ->
              (* append *)
              (match Ffs.dir_lookup fs root nm with
              | Some (_, ino) ->
                  let node = Ffs.iget fs ino in
                  if node.Ffs.i_kind = Ffs.K_file then begin
                    ignore
                      (Ffs.write fs node ~off:node.Ffs.i_size ~len:(String.length payload)
                         ~src:(Bytes.of_string payload) ~src_pos:0);
                    Hashtbl.replace model nm (Hashtbl.find model nm ^ payload)
                  end
              | None -> ())
          | 2 ->
              (* unlink *)
              (try
                 Ffs.unlink fs root ~name:nm;
                 Hashtbl.remove model nm
               with Ffs.Fs_error _ -> ())
          | _ ->
              (* truncate to half *)
              (match Ffs.dir_lookup fs root nm with
              | Some (_, ino) ->
                  let node = Ffs.iget fs ino in
                  if node.Ffs.i_kind = Ffs.K_file then begin
                    let half = node.Ffs.i_size / 2 in
                    Ffs.truncate fs node half;
                    (match Hashtbl.find_opt model nm with
                    | Some s -> Hashtbl.replace model nm (String.sub s 0 half)
                    | None -> ())
                  end
              | None -> ()))
        ops;
      (* Verify every model file matches. *)
      Hashtbl.fold
        (fun nm expected acc ->
          acc
          &&
          match Ffs.dir_lookup fs root nm with
          | None -> false
          | Some (_, ino) ->
              let node = Ffs.iget fs ino in
              let got =
                Bytes.create node.Ffs.i_size |> fun b ->
                ignore (Ffs.read fs node ~off:0 ~len:node.Ffs.i_size ~dst:b ~dst_pos:0);
                Bytes.to_string b
              in
              String.equal got expected)
        model true
      && List.sort compare (Ffs.dir_entries fs root)
         = List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) model []))

(* ---- fsread + diskpart over the same image ---- *)

let test_fsread_sees_ffs () =
  let dev = mem_dev () in
  let root = ok (Fs_glue.newfs dev) in
  let env = Posix.create_env () in
  Posix.set_root env (Some root);
  ok (Posix.mkdir env "/boot");
  write_file env "/boot/kernel" "KERNEL-IMAGE-BYTES";
  ok (Fs_glue.sync_all root);
  (* The independent read-only interpreter reads the same device. *)
  Alcotest.(check string) "fsread reads the file" "KERNEL-IMAGE-BYTES"
    (Bytes.to_string (ok (Fsread.read_file dev "/boot/kernel")));
  Alcotest.(check int) "fsread size" 18 (ok (Fsread.file_size dev "/boot/kernel"));
  Alcotest.(check (list string)) "fsread list" [ "kernel" ] (ok (Fsread.list_dir dev "/boot"))

let test_diskpart_and_fs () =
  let dev = mem_dev ~mb:8 () in
  (* Two partitions: 1MB..3MB and 3MB..8MB (in sectors). *)
  ok (Diskpart.write_label dev [ 0xA5, 2048, 4096; 0x83, 6144, 10240 ]);
  let parts = ok (Diskpart.read_partitions dev) in
  Alcotest.(check int) "two partitions" 2 (List.length parts);
  let p1 = List.nth parts 0 and p2 = List.nth parts 1 in
  Alcotest.(check int) "types" 0xA5 p1.Diskpart.p_type;
  Alcotest.(check bool) "active flag" true p1.Diskpart.p_active;
  (* File system on the second partition; first partition untouched. *)
  let sub2 = Diskpart.partition_blkio dev p2 in
  let root = ok (Fs_glue.newfs sub2) in
  let env = Posix.create_env () in
  Posix.set_root env (Some root);
  write_file env "/on-p2" "partitioned";
  ok (Fs_glue.sync_all root);
  Alcotest.(check string) "readable via partition view" "partitioned"
    (Bytes.to_string (ok (Fsread.read_file (Diskpart.partition_blkio dev p2) "/on-p2")));
  (* The MBR must still be intact (the sub-blkio rebases offsets). *)
  let parts' = ok (Diskpart.read_partitions dev) in
  Alcotest.(check int) "label survived" 2 (List.length parts')

let suite =
  [ Alcotest.test_case "create/read/write" `Quick test_create_read_write;
    Alcotest.test_case "directories" `Quick test_directories;
    Alcotest.test_case "big file (indirect)" `Quick test_big_file_indirect;
    Alcotest.test_case "sparse + double indirect" `Quick test_double_indirect;
    Alcotest.test_case "truncate frees blocks" `Quick test_truncate_frees_blocks;
    Alcotest.test_case "unlink frees" `Quick test_unlink_frees;
    Alcotest.test_case "rename across dirs" `Quick test_rename;
    Alcotest.test_case "persistence across remount" `Quick test_persistence_across_remount;
    Alcotest.test_case "error paths" `Quick test_errors;
    Alcotest.test_case "buffer cache" `Quick test_buffer_cache;
    QCheck_alcotest.to_alcotest prop_fs_model;
    Alcotest.test_case "fsread over ffs image" `Quick test_fsread_sees_ffs;
    Alcotest.test_case "diskpart + fs + fsread" `Quick test_diskpart_and_fs ]
