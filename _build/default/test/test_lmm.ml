(* LMM: typed regions, constrained allocation, coalescing, the open
   free-list walk; qcheck properties on the allocator invariants. *)

let make_pc_lmm () =
  let lmm = Lmm.create () in
  Bootmem.add_standard_regions lmm ~ram_bytes:(32 * 1024 * 1024);
  Lmm.add_free lmm ~addr:0x1000 ~size:((32 * 1024 * 1024) - 0x1000);
  lmm

let test_basic_alloc_free () =
  let lmm = make_pc_lmm () in
  let before = Lmm.avail lmm ~flags:0 in
  match Lmm.alloc lmm ~size:4096 ~flags:0 with
  | None -> Alcotest.fail "alloc failed"
  | Some addr ->
      Alcotest.(check int) "avail shrank" (before - 4096) (Lmm.avail lmm ~flags:0);
      Lmm.free lmm ~addr ~size:4096;
      Alcotest.(check int) "avail restored" before (Lmm.avail lmm ~flags:0)

let test_priority_order () =
  (* Highest-priority region (above 16MB) is used first for unconstrained
     allocations, leaving scarce low memory alone. *)
  let lmm = make_pc_lmm () in
  match Lmm.alloc lmm ~size:4096 ~flags:0 with
  | Some addr -> Alcotest.(check bool) "prefers high memory" true (addr >= Physmem.dma_limit)
  | None -> Alcotest.fail "alloc failed"

let test_dma_constraint () =
  let lmm = make_pc_lmm () in
  match Lmm.alloc lmm ~size:65536 ~flags:Lmm.flag_low_16mb with
  | Some addr ->
      Alcotest.(check bool) "below 16MB" true (addr + 65536 <= Physmem.dma_limit)
  | None -> Alcotest.fail "DMA alloc failed"

let test_low_1mb () =
  let lmm = make_pc_lmm () in
  match Lmm.alloc lmm ~size:4096 ~flags:(Lmm.flag_low_1mb lor Lmm.flag_low_16mb) with
  | Some addr -> Alcotest.(check bool) "below 1MB" true (addr + 4096 <= Physmem.low_limit)
  | None -> Alcotest.fail "low alloc failed"

let test_alignment () =
  let lmm = make_pc_lmm () in
  (* Unalign the free list first. *)
  ignore (Lmm.alloc lmm ~size:24 ~flags:0);
  for bits = 4 to 16 do
    match Lmm.alloc_aligned lmm ~size:100 ~flags:0 ~align_bits:bits ~align_ofs:0 with
    | Some addr ->
        Alcotest.(check int) (Printf.sprintf "aligned to 2^%d" bits) 0
          (addr land ((1 lsl bits) - 1))
    | None -> Alcotest.fail "aligned alloc failed"
  done

let test_align_ofs () =
  let lmm = make_pc_lmm () in
  match Lmm.alloc_gen lmm ~size:64 ~flags:0 ~align_bits:12 ~align_ofs:0x20 ~bounds_min:0
          ~bounds_max:max_int
  with
  | Some addr -> Alcotest.(check int) "offset alignment" 0x20 (addr land 0xfff)
  | None -> Alcotest.fail "align_ofs alloc failed"

let test_bounds () =
  let lmm = make_pc_lmm () in
  match
    Lmm.alloc_gen lmm ~size:4096 ~flags:0 ~align_bits:0 ~align_ofs:0 ~bounds_min:0x500000
      ~bounds_max:0x5fffff
  with
  | Some addr ->
      Alcotest.(check bool) "within window" true (addr >= 0x500000 && addr + 4096 <= 0x600000)
  | None -> Alcotest.fail "bounded alloc failed"

let test_exhaustion () =
  let lmm = Lmm.create () in
  Lmm.add_region lmm ~min:0 ~size:8192 ~flags:0 ~pri:0;
  Lmm.add_free lmm ~addr:0 ~size:8192;
  (match Lmm.alloc lmm ~size:16384 ~flags:0 with
  | Some _ -> Alcotest.fail "oversized alloc should fail"
  | None -> ());
  match Lmm.alloc lmm ~size:8192 ~flags:0 with
  | Some _ -> Alcotest.(check int) "now empty" 0 (Lmm.avail lmm ~flags:0)
  | None -> Alcotest.fail "exact-fit alloc failed"

let test_coalescing () =
  let lmm = Lmm.create () in
  Lmm.add_region lmm ~min:0 ~size:12288 ~flags:0 ~pri:0;
  Lmm.add_free lmm ~addr:0 ~size:12288;
  let a = Option.get (Lmm.alloc lmm ~size:4096 ~flags:0) in
  let b = Option.get (Lmm.alloc lmm ~size:4096 ~flags:0) in
  let c = Option.get (Lmm.alloc lmm ~size:4096 ~flags:0) in
  Lmm.free lmm ~addr:a ~size:4096;
  Lmm.free lmm ~addr:c ~size:4096;
  Lmm.free lmm ~addr:b ~size:4096;
  (* All three must have merged back into one block. *)
  let blocks = ref 0 in
  Lmm.iter_free lmm (fun ~addr:_ ~size:_ ~flags:_ -> incr blocks);
  Alcotest.(check int) "coalesced into one block" 1 !blocks;
  match Lmm.find_free lmm ~addr:0 with
  | Some (_, size, _) -> Alcotest.(check int) "full size back" 12288 size
  | None -> Alcotest.fail "no free block"

let test_double_free_detected () =
  let lmm = Lmm.create () in
  Lmm.add_region lmm ~min:0 ~size:8192 ~flags:0 ~pri:0;
  Lmm.add_free lmm ~addr:0 ~size:8192;
  let a = Option.get (Lmm.alloc lmm ~size:4096 ~flags:0) in
  Lmm.free lmm ~addr:a ~size:4096;
  Alcotest.(check bool) "double free raises" true
    (try
       Lmm.free lmm ~addr:a ~size:4096;
       false
     with Invalid_argument _ -> true)

let test_free_outside_region () =
  let lmm = Lmm.create () in
  Lmm.add_region lmm ~min:0x1000 ~size:4096 ~flags:0 ~pri:0;
  Alcotest.(check bool) "free outside any region raises" true
    (try
       Lmm.free lmm ~addr:0x100000 ~size:64;
       false
     with Invalid_argument _ -> true)

let test_add_free_splits_across_regions () =
  let lmm = Lmm.create () in
  Lmm.add_region lmm ~min:0 ~size:4096 ~flags:1 ~pri:0;
  Lmm.add_region lmm ~min:4096 ~size:4096 ~flags:2 ~pri:1;
  (* One donation spanning both regions plus uncovered space beyond. *)
  Lmm.add_free lmm ~addr:0 ~size:16384;
  Alcotest.(check int) "region 1 got its part" 4096 (Lmm.avail lmm ~flags:1);
  Alcotest.(check int) "region 2 got its part" 4096 (Lmm.avail lmm ~flags:2);
  Alcotest.(check int) "uncovered space dropped" 8192 (Lmm.avail lmm ~flags:0)

let test_find_free_walk () =
  let lmm = Lmm.create () in
  Lmm.add_region lmm ~min:0 ~size:65536 ~flags:0 ~pri:0;
  Lmm.add_free lmm ~addr:0 ~size:65536;
  let a = Option.get (Lmm.alloc lmm ~size:100 ~flags:0) in
  ignore a;
  match Lmm.find_free lmm ~addr:0 with
  | Some (base, _, _) -> Alcotest.(check int) "first free after carve" 100 base
  | None -> Alcotest.fail "walk found nothing"

(* ---- property tests ---- *)

(* Random alloc/free interleavings: allocations never overlap, and freeing
   everything restores the exact byte count. *)
let prop_no_overlap =
  QCheck.Test.make ~name:"lmm: random ops keep blocks disjoint and conserve bytes"
    ~count:100
    QCheck.(list (pair (int_range 1 2000) (int_range 0 4)))
    (fun ops ->
      let total = 1 lsl 20 in
      let lmm = Lmm.create () in
      Lmm.add_region lmm ~min:0 ~size:total ~flags:0 ~pri:0;
      Lmm.add_free lmm ~addr:0 ~size:total;
      let live = ref [] in
      List.iter
        (fun (size, action) ->
          if action = 0 && !live <> [] then begin
            match !live with
            | (addr, sz) :: rest ->
                Lmm.free lmm ~addr ~size:sz;
                live := rest
            | [] -> ()
          end
          else
            match Lmm.alloc lmm ~size ~flags:0 with
            | Some addr ->
                (* No overlap with any live block. *)
                List.iter
                  (fun (a, s) ->
                    if addr < a + s && a < addr + size then
                      QCheck.Test.fail_reportf "overlap: %#x+%d vs %#x+%d" addr size a s)
                  !live;
                live := (addr, size) :: !live
            | None -> ())
        ops;
      List.iter (fun (addr, size) -> Lmm.free lmm ~addr ~size) !live;
      Lmm.avail lmm ~flags:0 = total)

let prop_aligned =
  QCheck.Test.make ~name:"lmm: alloc_aligned results are aligned" ~count:100
    QCheck.(pair (int_range 1 5000) (int_range 0 12))
    (fun (size, bits) ->
      let lmm = Lmm.create () in
      Lmm.add_region lmm ~min:0 ~size:(1 lsl 20) ~flags:0 ~pri:0;
      Lmm.add_free lmm ~addr:12 ~size:((1 lsl 20) - 12);
      match Lmm.alloc_aligned lmm ~size ~flags:0 ~align_bits:bits ~align_ofs:0 with
      | Some addr -> addr land ((1 lsl bits) - 1) = 0
      | None -> false)

let suite =
  [ Alcotest.test_case "basic alloc/free" `Quick test_basic_alloc_free;
    Alcotest.test_case "priority order" `Quick test_priority_order;
    Alcotest.test_case "DMA constraint" `Quick test_dma_constraint;
    Alcotest.test_case "low 1MB constraint" `Quick test_low_1mb;
    Alcotest.test_case "alignment" `Quick test_alignment;
    Alcotest.test_case "align offset" `Quick test_align_ofs;
    Alcotest.test_case "bounded alloc" `Quick test_bounds;
    Alcotest.test_case "exhaustion" `Quick test_exhaustion;
    Alcotest.test_case "coalescing" `Quick test_coalescing;
    Alcotest.test_case "double free detected" `Quick test_double_free_detected;
    Alcotest.test_case "free outside region" `Quick test_free_outside_region;
    Alcotest.test_case "add_free splits across regions" `Quick
      test_add_free_splits_across_regions;
    Alcotest.test_case "find_free walk" `Quick test_find_free_walk;
    QCheck_alcotest.to_alcotest prop_no_overlap;
    QCheck_alcotest.to_alcotest prop_aligned ]
