(* The bytecode VM: assembler, arithmetic/control flow, bytecode file
   roundtrip, host syscalls, null-pointer trapping via debug registers. *)

let assemble_ok src =
  match Vm.assemble src with
  | Ok code -> code
  | Error msg -> Alcotest.failf "assembler: %s" msg

let run_result ?traps src =
  let code = assemble_ok src in
  let vm = Vm.create ?traps ~bindings:Vm.null_bindings code in
  Vm.run vm

let test_arith () =
  Alcotest.(check int) "arith" 42
    (run_result "push 6\npush 7\nmul\nhalt");
  Alcotest.(check int) "sub order" 3 (run_result "push 10\npush 7\nsub\nhalt");
  Alcotest.(check int) "div" 5 (run_result "push 17\npush 3\ndiv\nhalt");
  Alcotest.(check int) "rem" 2 (run_result "push 17\npush 3\nrem\nhalt");
  Alcotest.(check int) "cmp" 1 (run_result "push 3\npush 4\nlt\nhalt")

let test_control_flow () =
  (* Sum 1..10 with a loop. *)
  let src =
    {|
; sum 1..10 into global 0, counter in global 1
push 0
store 0
push 10
store 1
loop:
load 1
jz done
load 0
load 1
add
store 0
load 1
push 1
sub
store 1
jmp loop
done:
load 0
halt
|}
  in
  Alcotest.(check int) "loop sum" 55 (run_result src)

let test_call_ret () =
  let src =
    {|
push 5
call double
push 100
add
halt
double:
push 2
mul
ret
|}
  in
  Alcotest.(check int) "call/ret" 110 (run_result src)

let test_heap_and_faults () =
  (* Use addresses above the guarded null page. *)
  Alcotest.(check int) "heap store/load" 77
    (run_result "push 77\npush 5000\nstoreb\npush 5000\nloadb\nhalt");
  Alcotest.(check bool) "stack underflow" true
    (try
       ignore (run_result "pop\nhalt");
       false
     with Vm.Vm_fault _ -> true);
  Alcotest.(check bool) "div by zero" true
    (try
       ignore (run_result "push 1\npush 0\ndiv\nhalt");
       false
     with Vm.Vm_fault _ -> true);
  Alcotest.(check bool) "runaway fuel" true
    (try
       let code = assemble_ok "spin:\njmp spin" in
       ignore (Vm.run ~fuel:1000 (Vm.create ~bindings:Vm.null_bindings code));
       false
     with Vm.Vm_fault _ -> true)

let test_null_pointer_via_trap () =
  (* Section 6.2.4: the guarded null page fires the debug-register trap
     path; the kernel handler observes it, then the VM raises. *)
  let w = World.create () in
  let m = Machine.create ~name:"vm-pc" w in
  let traps = Trap.create m in
  let seen = ref None in
  Trap.set_handler traps Trap.T_debug (fun f ->
      seen := Some f.Trap.cr2;
      `Handled);
  let code = assemble_ok "push 16\nloadb\nhalt" in
  let vm = Vm.create ~traps ~bindings:Vm.null_bindings code in
  (match Machine.run_in m (fun () -> Vm.run vm) with
  | exception Vm.Null_pointer addr -> Alcotest.(check int) "faulting addr" 16 addr
  | _ -> Alcotest.fail "null access must raise");
  Alcotest.(check (option int32)) "kernel handler saw the trap" (Some 16l) !seen

let test_syscalls () =
  let out = Buffer.create 16 in
  let sent = Buffer.create 16 in
  let bindings =
    { Vm.putc = Buffer.add_char out;
      send =
        (fun b ~pos ~len ->
          Buffer.add_subbytes sent b pos len;
          len);
      recv =
        (fun b ~pos ~len ->
          let msg = "input" in
          let n = min len (String.length msg) in
          Bytes.blit_string msg 0 b pos n;
          n);
      time_ns = (fun () -> 12345) }
  in
  let src =
    {|
; print 'H', read 5 bytes to 4096, send them back, push time
push 72
sys 0
push 4096
push 5
sys 4
pop
push 4096
push 5
sys 3
pop
sys 2
halt
|}
  in
  let code = assemble_ok src in
  let vm = Vm.create ~bindings code in
  let result = Vm.run vm in
  Alcotest.(check string) "putc" "H" (Buffer.contents out);
  Alcotest.(check string) "recv->send loop" "input" (Buffer.contents sent);
  Alcotest.(check int) "time syscall" 12345 result

let test_bytecode_roundtrip () =
  let code = assemble_ok "push 1\npush 2\nadd\nhalt" in
  let encoded = Vm.encode code in
  (match Vm.decode encoded with
  | Ok decoded ->
      Alcotest.(check int) "same length" (Array.length code) (Array.length decoded);
      let vm = Vm.create ~bindings:Vm.null_bindings decoded in
      Alcotest.(check int) "decoded program runs" 3 (Vm.run vm)
  | Error e -> Alcotest.failf "decode: %s" e);
  (match Vm.decode (Bytes.of_string "garbage!") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad magic accepted")

let test_assembler_errors () =
  (match Vm.assemble "push" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "missing operand accepted");
  match Vm.assemble "jmp nowhere" with
  | Error msg -> Alcotest.(check bool) "mentions label" true
                   (String.length msg > 0)
  | Ok _ -> Alcotest.fail "unknown label accepted"

(* Random arithmetic expressions: VM agrees with direct evaluation. *)
let prop_arith =
  QCheck.Test.make ~name:"vm: random rpn arithmetic agrees with evaluation" ~count:200
    QCheck.(pair (int_range (-1000) 1000) (small_list (pair (int_range 0 2) (int_range 1 100))))
    (fun (seed, ops) ->
      let buf = Buffer.create 64 in
      Buffer.add_string buf (Printf.sprintf "push %d\n" seed);
      let expected =
        List.fold_left
          (fun acc (op, v) ->
            Buffer.add_string buf (Printf.sprintf "push %d\n" v);
            match op with
            | 0 ->
                Buffer.add_string buf "add\n";
                acc + v
            | 1 ->
                Buffer.add_string buf "sub\n";
                acc - v
            | _ ->
                Buffer.add_string buf "mul\n";
                acc * v)
          seed ops
      in
      Buffer.add_string buf "halt\n";
      match Vm.assemble (Buffer.contents buf) with
      | Ok code -> Vm.run (Vm.create ~bindings:Vm.null_bindings code) = expected
      | Error _ -> false)

let suite =
  [ Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "control flow" `Quick test_control_flow;
    Alcotest.test_case "call/ret" `Quick test_call_ret;
    Alcotest.test_case "heap + faults" `Quick test_heap_and_faults;
    Alcotest.test_case "null pointer via debug trap" `Quick test_null_pointer_via_trap;
    Alcotest.test_case "syscalls" `Quick test_syscalls;
    Alcotest.test_case "bytecode roundtrip" `Quick test_bytecode_roundtrip;
    Alcotest.test_case "assembler errors" `Quick test_assembler_errors;
    QCheck_alcotest.to_alcotest prop_arith ]
