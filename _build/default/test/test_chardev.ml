(* The FreeBSD character drivers (tty core + glue) and their coexistence
   with the Linux driver set in one probe — Section 3.6's "the FreeBSD
   drivers work alongside the Linux drivers without a problem". *)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "error: %s" (Error.to_string e)

let make_machine_with_tty () =
  Fdev.clear_drivers ();
  Freebsd_dev_glue.reset ();
  Linux_glue.reset ();
  let w = World.create () in
  let m = Machine.create ~name:(Printf.sprintf "tty-pc-%d" (Random.int 1_000_000)) w in
  let sched = Thread.create_sched m in
  Thread.install sched;
  Bus.clear m;
  let serial = Serial.create ~machine:m ~irq:4 () in
  Bus.register_hw m (Bus.Hw_serial { model = "sio-16550"; serial });
  w, m, sched, serial

let test_tty_read_write () =
  let w, m, sched, serial = make_machine_with_tty () in
  Freebsd_dev_glue.init_char_devices ();
  let osenv = Osenv.create m in
  ignore (Fdev.probe osenv);
  match Fdev.lookup osenv Io_if.chario_iid with
  | [ cio ] ->
      let got = ref "" in
      Thread.spawn sched ~name:"reader" (fun () ->
          let buf = Bytes.create 16 in
          (* Blocks until the "user" types. *)
          let n = ok (cio.Io_if.cio_read ~buf ~pos:0 ~amount:16) in
          got := Bytes.sub_string buf 0 n;
          (* And write a prompt back out the UART. *)
          let msg = Bytes.of_string "ok> " in
          ignore (ok (cio.Io_if.cio_write ~buf:msg ~pos:0 ~amount:4)));
      Machine.kick m;
      (* Simulate input arriving on the line after 1 ms. *)
      ignore (Machine.at m 1_000_000 (fun () -> Serial.inject serial "hi"));
      World.run w;
      Alcotest.(check string) "read blocked then returned input" "hi" !got;
      Alcotest.(check string) "write reached the UART" "ok> " (Serial.captured_output serial)
  | l -> Alcotest.failf "expected 1 chario, got %d" (List.length l)

let test_posix_console_fd () =
  let w, m, sched, serial = make_machine_with_tty () in
  Freebsd_dev_glue.init_char_devices ();
  let osenv = Osenv.create m in
  ignore (Fdev.probe osenv);
  let cio =
    match Fdev.lookup osenv Io_if.chario_iid with [ c ] -> c | _ -> Alcotest.fail "no tty"
  in
  (* Install the tty as a descriptor and drive it with POSIX write. *)
  let env = Posix.create_env () in
  let fd = Posix.install_chario env cio in
  let finished = ref false in
  Thread.spawn sched (fun () ->
      let b = Bytes.of_string "console via write(2)\n" in
      let n = ok (Posix.write env fd b ~pos:0 ~len:(Bytes.length b)) in
      Alcotest.(check int) "full write" (Bytes.length b) n;
      finished := true);
  Machine.kick m;
  World.run w ~until:(fun () -> !finished);
  Alcotest.(check string) "appeared on the console" "console via write(2)\n"
    (Serial.captured_output serial)

let test_mixed_donor_probe () =
  (* One machine with a Linux NIC, a Linux IDE disk, and a FreeBSD tty:
     all three driver sets probe side by side. *)
  Fdev.clear_drivers ();
  Freebsd_dev_glue.reset ();
  Linux_glue.reset ();
  let w = World.create () in
  let m = Machine.create ~name:"mixed-pc" w in
  Bus.clear m;
  let wire = Wire.create w in
  Bus.register_hw m
    (Bus.Hw_nic
       { model = "tulip";
         nic = Nic.create ~machine:m ~wire ~mac:"\x02\x00\x00\x00\x07\x01" ~irq:9 () });
  Bus.register_hw m
    (Bus.Hw_disk { model = "ST-3491A"; disk = Disk.create ~machine:m ~sectors:2048 ~irq:14 () });
  Bus.register_hw m
    (Bus.Hw_serial { model = "syscons"; serial = Serial.create ~machine:m ~irq:4 () });
  Linux_glue.init_ethernet ();
  Linux_glue.init_ide ();
  Freebsd_dev_glue.init_char_devices ();
  let osenv = Osenv.create m in
  let found = Fdev.probe osenv in
  Alcotest.(check int) "three devices from two donor OSes" 3 found;
  Alcotest.(check int) "etherdev (linux)" 1 (List.length (Fdev.lookup osenv Io_if.etherdev_iid));
  Alcotest.(check int) "blkio (linux)" 1 (List.length (Fdev.lookup osenv Io_if.blkio_iid));
  Alcotest.(check int) "chario (freebsd)" 1 (List.length (Fdev.lookup osenv Io_if.chario_iid));
  Fdev.clear_drivers ()

let test_input_overflow_counted () =
  let w, m, _sched, serial = make_machine_with_tty () in
  Freebsd_dev_glue.init_char_devices ();
  let osenv = Osenv.create m in
  ignore (Fdev.probe osenv);
  (* Nobody reads; flood the line far past the clist limit. *)
  ignore (Machine.at m 1000 (fun () -> Serial.inject serial (String.make 600 'x')));
  World.run w;
  match !Freebsd_char_drv.found with
  | [ tty ] ->
      Alcotest.(check bool) "overflow recorded" true (tty.Freebsd_char_drv.t_overflows > 0);
      Alcotest.(check int) "queue capped at the clist limit" 256
        (Queue.length tty.Freebsd_char_drv.t_canq)
  | _ -> Alcotest.fail "tty not probed"

let suite =
  [ Alcotest.test_case "tty blocking read/write" `Quick test_tty_read_write;
    Alcotest.test_case "posix console descriptor" `Quick test_posix_console_fd;
    Alcotest.test_case "mixed-donor probe" `Quick test_mixed_donor_probe;
    Alcotest.test_case "input overflow" `Quick test_input_overflow_counted ]
