(* The POSIX layer over COM sockets: UDP datagrams through the socket
   factory, descriptor bookkeeping, determinism of the whole simulation. *)

let ip = Oskit.ip_of_string
let mask = ip "255.255.255.0"

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "error: %s" (Error.to_string e)

let make_pair () =
  Clientos.reset_globals ();
  Fdev.clear_drivers ();
  let tb = Clientos.make_testbed ~models:("rtl8139", "de4x5") () in
  let env_a, _ = Clientos.oskit_host tb.Clientos.host_a ~ip:(ip "10.0.0.1") ~mask in
  let env_b, _ = Clientos.oskit_host tb.Clientos.host_b ~ip:(ip "10.0.0.2") ~mask in
  tb, env_a, env_b

let test_udp_posix () =
  let tb, env_a, env_b = make_pair () in
  let answer = ref None in
  Clientos.spawn tb.Clientos.host_b ~name:"udp-echo" (fun () ->
      let fd = ok (Posix.socket env_b Io_if.Sock_dgram) in
      ok (Posix.bind env_b fd { Io_if.sin_addr = ip "10.0.0.2"; sin_port = 53 });
      let s = ok (Posix.socket_of_fd env_b fd) in
      let buf = Bytes.create 512 in
      let n, peer = ok (s.Io_if.so_recvfrom ~buf ~pos:0 ~len:512) in
      (* Echo it back, uppercased, to the sender. *)
      let reply = Bytes.of_string (String.uppercase_ascii (Bytes.sub_string buf 0 n)) in
      ignore (ok (s.Io_if.so_sendto ~buf:reply ~pos:0 ~len:n ~dst:peer)));
  Clientos.spawn tb.Clientos.host_a ~name:"udp-client" (fun () ->
      Kclock.sleep_ns 2_000_000;
      let fd = ok (Posix.socket env_a Io_if.Sock_dgram) in
      ok (Posix.bind env_a fd { Io_if.sin_addr = ip "10.0.0.1"; sin_port = 1053 });
      let s = ok (Posix.socket_of_fd env_a fd) in
      let query = Bytes.of_string "query" in
      ignore
        (ok
           (s.Io_if.so_sendto ~buf:query ~pos:0 ~len:5
              ~dst:{ Io_if.sin_addr = ip "10.0.0.2"; sin_port = 53 }));
      let buf = Bytes.create 64 in
      let n, _ = ok (s.Io_if.so_recvfrom ~buf ~pos:0 ~len:64) in
      answer := Some (Bytes.sub_string buf 0 n));
  Clientos.run tb ~until:(fun () -> !answer <> None);
  Alcotest.(check (option string)) "udp echo through the factory" (Some "QUERY") !answer

let test_udp_connected_send () =
  let tb, env_a, env_b = make_pair () in
  let got = ref None in
  Clientos.spawn tb.Clientos.host_b (fun () ->
      let fd = ok (Posix.socket env_b Io_if.Sock_dgram) in
      ok (Posix.bind env_b fd { Io_if.sin_addr = ip "10.0.0.2"; sin_port = 7 });
      let buf = Bytes.create 64 in
      let n = ok (Posix.recv env_b fd buf ~pos:0 ~len:64) in
      got := Some (Bytes.sub_string buf 0 n));
  Clientos.spawn tb.Clientos.host_a (fun () ->
      Kclock.sleep_ns 2_000_000;
      let fd = ok (Posix.socket env_a Io_if.Sock_dgram) in
      (* connect() then plain write-style send. *)
      ok (Posix.connect env_a fd { Io_if.sin_addr = ip "10.0.0.2"; sin_port = 7 });
      let b = Bytes.of_string "via-connected-udp" in
      ignore (ok (Posix.send env_a fd b ~pos:0 ~len:(Bytes.length b))));
  Clientos.run tb ~until:(fun () -> !got <> None);
  Alcotest.(check (option string)) "connected-udp datagram" (Some "via-connected-udp") !got

let test_fd_bookkeeping () =
  let env = Posix.create_env () in
  Alcotest.(check int) "fresh env" 0 (Posix.live_fds env);
  (match Posix.close env 42 with
  | Error Error.Badf -> ()
  | _ -> Alcotest.fail "closing a bad fd must EBADF");
  (match Posix.read env 7 (Bytes.create 1) ~pos:0 ~len:1 with
  | Error Error.Badf -> ()
  | _ -> Alcotest.fail "reading a bad fd must EBADF");
  (* Sockets without a factory. *)
  match Posix.socket env Io_if.Sock_stream with
  | Error Error.Notsup -> ()
  | _ -> Alcotest.fail "socket without a factory must fail"

(* Determinism: the virtual-time simulation must produce identical results
   when repeated in one process — the property every benchmark number
   rests on. *)
let test_determinism () =
  let run () =
    let tb, env_a, env_b = make_pair () in
    let finished = ref 0 in
    Clientos.spawn tb.Clientos.host_b (fun () ->
        let fd = ok (Posix.socket env_b Io_if.Sock_stream) in
        ok (Posix.bind env_b fd { Io_if.sin_addr = ip "10.0.0.2"; sin_port = 5001 });
        ok (Posix.listen env_b fd ~backlog:1);
        let conn, _ = ok (Posix.accept env_b fd) in
        let buf = Bytes.create 4096 in
        let rec loop () =
          match ok (Posix.recv env_b conn buf ~pos:0 ~len:4096) with
          | 0 -> finished := Machine.now tb.Clientos.host_b.Clientos.machine
          | _ -> loop ()
        in
        loop ());
    Clientos.spawn tb.Clientos.host_a (fun () ->
        Kclock.sleep_ns 2_000_000;
        let fd = ok (Posix.socket env_a Io_if.Sock_stream) in
        ok (Posix.connect env_a fd { Io_if.sin_addr = ip "10.0.0.2"; sin_port = 5001 });
        let data = Bytes.make 65536 'D' in
        let _ = ok (Posix.send env_a fd data ~pos:0 ~len:65536) in
        ok (Posix.shutdown env_a fd));
    Clientos.run tb ~until:(fun () -> !finished > 0);
    !finished
  in
  let a = run () in
  let b = run () in
  Alcotest.(check int) "identical completion time across runs" a b

let suite =
  [ Alcotest.test_case "udp sendto/recvfrom via factory" `Quick test_udp_posix;
    Alcotest.test_case "udp connected send" `Quick test_udp_connected_send;
    Alcotest.test_case "fd bookkeeping" `Quick test_fd_bookkeeping;
    Alcotest.test_case "simulation determinism" `Quick test_determinism ]
