(* Unit tests for the network substrate pieces: mbufs, skbuffs, checksums,
   TCP sequence arithmetic, ARP, IP fragmentation, UDP, ICMP, and the
   buffer-translation glue. *)

let ip = Oskit.ip_of_string

(* ---- mbufs ---- *)

let chain_of_strings parts =
  match parts with
  | [] -> invalid_arg "empty"
  | first :: rest ->
      let head = Mbuf.m_ext_wrap (Bytes.of_string first) ~off:0 ~len:(String.length first) in
      List.iter
        (fun s -> Mbuf.m_cat head (Mbuf.m_ext_wrap (Bytes.of_string s) ~off:0 ~len:(String.length s)))
        rest;
      head

let test_mbuf_basics () =
  let m = chain_of_strings [ "hello "; "world"; "!" ] in
  Alcotest.(check int) "length" 12 (Mbuf.m_length m);
  Alcotest.(check int) "count" 3 (Mbuf.m_count m);
  Alcotest.(check string) "copydata spans mbufs" "lo wor"
    (Bytes.to_string (Mbuf.m_copydata m ~off:3 ~len:6))

let test_mbuf_adj () =
  let m = chain_of_strings [ "aaaa"; "bbbb"; "cccc" ] in
  Mbuf.m_adj m 6;
  Alcotest.(check string) "front trim crosses mbufs" "bbcccc"
    (Bytes.to_string (Mbuf.m_copydata m ~off:0 ~len:(Mbuf.m_length m)));
  Mbuf.m_adj m (-3);
  Alcotest.(check string) "back trim" "bbc"
    (Bytes.to_string (Mbuf.m_copydata m ~off:0 ~len:(Mbuf.m_length m)))

let test_mbuf_prepend_headroom () =
  let m = Mbuf.m_gethdr () in
  ignore (Mbuf.m_put m 10);
  let m' = Mbuf.m_prepend m 14 in
  Alcotest.(check bool) "used headroom, no new mbuf" true (m' == m);
  Alcotest.(check int) "length grew" 24 (Mbuf.m_length m');
  (* A cluster has no headroom: prepend must chain a new header mbuf. *)
  let c = Mbuf.m_getclust () in
  c.Mbuf.m_len <- 100;
  c.Mbuf.m_pkthdr_len <- 100;
  let c' = Mbuf.m_prepend c 14 in
  Alcotest.(check bool) "new head mbuf" true (c' != c);
  Alcotest.(check int) "chain of two" 2 (Mbuf.m_count c');
  Alcotest.(check int) "total" 114 (Mbuf.m_length c')

let test_mbuf_copym_shares_clusters () =
  let backing = Bytes.of_string (String.make 2000 'Q') in
  let m = Mbuf.m_ext_wrap backing ~off:0 ~len:2000 in
  let copy = Mbuf.m_copym m ~off:100 ~len:500 in
  (* Shared storage: no data copy — mutating the original shows through. *)
  Bytes.set backing 100 'Z';
  Alcotest.(check string) "shares the cluster" "Z"
    (Bytes.to_string (Mbuf.m_copydata copy ~off:0 ~len:1));
  Alcotest.(check int) "copym pkthdr" 500 copy.Mbuf.m_pkthdr_len

let test_mbuf_pullup () =
  let m = chain_of_strings [ "ab"; "cd"; "efgh" ] in
  let m' = Mbuf.m_pullup m 5 in
  Alcotest.(check bool) "first 5 bytes contiguous" true (m'.Mbuf.m_len >= 5);
  Alcotest.(check string) "contents preserved" "abcdefgh"
    (Bytes.to_string (Mbuf.m_copydata m' ~off:0 ~len:8))

let test_mbuf_append () =
  let m = Mbuf.m_gethdr () in
  Mbuf.m_append m ~src:(Bytes.of_string (String.make 5000 'x')) ~src_pos:0 ~len:5000;
  Alcotest.(check int) "append large" 5000 (Mbuf.m_length m);
  Alcotest.(check bool) "spilled into clusters" true (Mbuf.m_count m > 1)

(* ---- skbuffs ---- *)

let test_skbuff_ops () =
  let skb = Skbuff.alloc_skb 200 in
  Skbuff.skb_reserve skb 50;
  Alcotest.(check int) "headroom" 50 (Skbuff.skb_headroom skb);
  let off = Skbuff.skb_put skb 20 in
  Alcotest.(check int) "put at reserved offset" 50 off;
  let off2 = Skbuff.skb_push skb 14 in
  Alcotest.(check int) "push eats headroom" 36 off2;
  Alcotest.(check int) "len" 34 skb.Skbuff.len;
  ignore (Skbuff.skb_pull skb 14);
  Alcotest.(check int) "pull restores" 20 skb.Skbuff.len;
  Alcotest.check_raises "over-push panics" Skbuff.Skb_over_panic (fun () ->
      ignore (Skbuff.skb_push skb 1000))

(* ---- buffer translation glue ---- *)

let test_skb_bufio_roundtrip () =
  let skb = Skbuff.alloc_skb 100 in
  let off = Skbuff.skb_put skb 11 in
  Bytes.blit_string "linux-bytes" 0 skb.Skbuff.skb_data off 11;
  let io = Linux_glue.bufio_of_skb skb in
  (* The Linux glue recognises its own buffer: no copy. *)
  let skb', copied = Linux_glue.skb_of_bufio io in
  Alcotest.(check bool) "own skbuff unwrapped" true (skb' == skb);
  Alcotest.(check bool) "no copy" false copied

let test_mbuf_chain_forces_copy_in_linux_glue () =
  (* A 2-mbuf chain maps to no contiguous buffer: the Linux glue must
     copy — the Table 1 send-path effect. *)
  let m = chain_of_strings [ "part-one-"; "part-two" ] in
  let io = Freebsd_glue.bufio_of_mbuf m in
  Alcotest.(check bool) "chain does not map" true (io.Io_if.buf_map () = None);
  let skb, copied = Linux_glue.skb_of_bufio io in
  Alcotest.(check bool) "copied" true copied;
  Alcotest.(check string) "contents flattened" "part-one-part-two"
    (Bytes.sub_string skb.Skbuff.skb_data skb.Skbuff.head skb.Skbuff.len)

let test_single_mbuf_maps_no_copy () =
  let m = chain_of_strings [ "contiguous-payload" ] in
  let io = Freebsd_glue.bufio_of_mbuf m in
  Alcotest.(check bool) "single mbuf maps" true (io.Io_if.buf_map () <> None);
  let skb, copied = Linux_glue.skb_of_bufio io in
  Alcotest.(check bool) "fake skbuff, no copy" false copied;
  Alcotest.(check string) "aliases the data" "contiguous-payload"
    (Bytes.sub_string skb.Skbuff.skb_data skb.Skbuff.head skb.Skbuff.len)

let test_skb_to_mbuf_no_copy () =
  (* Receive path: a contiguous sk_buff becomes an external-storage mbuf
     without copying. *)
  let skb = Skbuff.alloc_skb 64 in
  let off = Skbuff.skb_put skb 10 in
  Bytes.blit_string "rx-payload" 0 skb.Skbuff.skb_data off 10;
  let io = Linux_glue.bufio_of_skb skb in
  let m, copied = Freebsd_glue.mbuf_of_bufio io in
  Alcotest.(check bool) "no copy on receive" false copied;
  Alcotest.(check bool) "external storage shared" true (m.Mbuf.m_data == skb.Skbuff.skb_data)

(* ---- checksums ---- *)

let test_cksum_known_vector () =
  (* RFC 1071 example: 0x0001 0xf203 0xf4f5 0xf6f7 -> checksum 0x220d. *)
  let data = Bytes.of_string "\x00\x01\xf2\x03\xf4\xf5\xf6\xf7" in
  Alcotest.(check int) "rfc1071 vector" 0x220d (In_cksum.cksum_bytes data ~off:0 ~len:8)

let test_cksum_chain_equals_flat () =
  let flat = Bytes.of_string "The quick brown fox jumps over the lazy dog!" in
  let whole = In_cksum.cksum_bytes flat ~off:0 ~len:(Bytes.length flat) in
  (* Same bytes split across mbufs at an odd boundary. *)
  let m = chain_of_strings [ "The quick"; " brown fox jumps "; "over the lazy dog!" ] in
  Alcotest.(check int) "chain = flat" whole
    (In_cksum.cksum_chain m ~off:0 ~len:(Mbuf.m_length m));
  (* Verification: a packet containing its own checksum sums to zero. *)
  let with_sum = Bytes.cat flat (Bytes.create 2) in
  Bytes.set_uint16_be with_sum (Bytes.length flat) whole;
  Alcotest.(check int) "self-verifies" 0
    (In_cksum.cksum_bytes with_sum ~off:0 ~len:(Bytes.length with_sum))

let prop_cksum_detects_single_bit_flips =
  QCheck.Test.make ~name:"in_cksum: detects any single-bit flip" ~count:100
    QCheck.(pair (string_of_size (QCheck.Gen.int_range 2 100)) (pair small_nat small_nat))
    (fun (s, (byte_idx, bit)) ->
      let b = Bytes.of_string s in
      let len = Bytes.length b in
      let sum0 = In_cksum.cksum_bytes b ~off:0 ~len in
      let i = byte_idx mod len and bit = bit mod 8 in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
      In_cksum.cksum_bytes b ~off:0 ~len <> sum0)

(* ---- TCP sequence arithmetic ---- *)

let prop_seq_total_order_window =
  QCheck.Test.make ~name:"tcp: seq comparisons respect 2^31 window" ~count:500
    QCheck.(pair (int_bound 0xffffffff) (int_bound 0x7ffffffe))
    (fun (a, delta) ->
      let b = (a + delta + 1) land 0xffffffff in
      (* b is ahead of a by 1..2^31-1: always a < b in sequence space. *)
      Tcp.seq_lt a b && Tcp.seq_gt b a && Tcp.seq_leq a b && not (Tcp.seq_geq a b))

let test_seq_wraparound () =
  Alcotest.(check bool) "wrap: 0xffffffff < 0" true (Tcp.seq_lt 0xffffffff 0x0);
  Alcotest.(check bool) "diff across wrap" true (Tcp.seq_diff 0x0 0xffffffff = 1);
  Alcotest.(check bool) "equal" true (Tcp.seq_leq 5 5 && Tcp.seq_geq 5 5)

(* ---- a two-host raw-IP rig over the simulated wire ---- *)

let make_pair () =
  let w = World.create () in
  let wire = Wire.create w in
  let mk name mac ipaddr =
    let machine = Machine.create ~name w in
    let _kern = Kernel.create machine in
    let nic = Nic.create ~machine ~wire ~mac ~irq:9 () in
    let stack = Bsd_socket.create_stack machine ~hwaddr:(Nic.mac nic) ~name in
    Native_if.attach stack nic;
    Bsd_socket.ifconfig stack ~addr:(ip ipaddr) ~mask:(ip "255.255.255.0");
    machine, stack
  in
  let ma, sa = mk "parts-a" "\x02\x00\x00\x00\x00\xaa" "10.1.0.1" in
  let mb, sb = mk "parts-b" "\x02\x00\x00\x00\x00\xbb" "10.1.0.2" in
  w, ma, sa, mb, sb

let test_arp_resolution () =
  let w, ma, sa, _mb, sb = make_pair () in
  let resolved = ref None in
  Machine.run_in ma (fun () ->
      Arp.resolve sa.Bsd_socket.arp (ip "10.1.0.2") (fun mac -> resolved := Some mac));
  World.run w;
  Alcotest.(check (option string)) "resolved to b's MAC"
    (Some sb.Bsd_socket.ifp.Netif.if_hwaddr) !resolved;
  Alcotest.(check int) "one request on the wire" 1 sa.Bsd_socket.arp.Arp.requests_sent;
  (* Second resolution hits the cache. *)
  Machine.run_in ma (fun () ->
      Arp.resolve sa.Bsd_socket.arp (ip "10.1.0.2") (fun _ -> ()));
  Alcotest.(check int) "no second request" 1 sa.Bsd_socket.arp.Arp.requests_sent

let test_icmp_echo () =
  let w, ma, sa, _mb, sb = make_pair () in
  let reply = ref None in
  sa.Bsd_socket.icmp.Icmp.on_echo_reply <-
    (fun ~ident ~seq ~payload -> reply := Some (ident, seq, Bytes.to_string payload));
  Machine.run_in ma (fun () ->
      Icmp.send_echo sa.Bsd_socket.icmp ~dst:(ip "10.1.0.2") ~ident:7 ~seq:3
        ~payload:(Bytes.of_string "ping-payload"));
  World.run w;
  Alcotest.(check (option (triple int int string))) "echo reply round trip"
    (Some (7, 3, "ping-payload")) !reply;
  Alcotest.(check int) "b answered one echo" 1 sb.Bsd_socket.icmp.Icmp.echoes_answered

let test_ip_fragmentation () =
  let w, ma, sa, _mb, sb = make_pair () in
  (* Register a raw protocol on both sides and send a 5000-byte datagram:
     it must fragment (MTU 1500) and reassemble. *)
  let received = ref None in
  Ip.set_proto sb.Bsd_socket.ip ~proto:200 (fun ~src:_ ~dst:_ m ->
      received := Some (Mbuf.m_copydata m ~off:0 ~len:(Mbuf.m_length m)));
  let payload = Bytes.init 5000 (fun i -> Char.chr (i land 0xff)) in
  Machine.run_in ma (fun () ->
      let m = Mbuf.m_ext_wrap (Bytes.copy payload) ~off:0 ~len:5000 in
      Ip.output sa.Bsd_socket.ip ~proto:200 ~src:sa.Bsd_socket.ifp.Netif.if_addr
        ~dst:(ip "10.1.0.2") m);
  World.run w;
  (match !received with
  | Some got ->
      Alcotest.(check int) "reassembled size" 5000 (Bytes.length got);
      Alcotest.(check string) "reassembled content" (Digest.to_hex (Digest.bytes payload))
        (Digest.to_hex (Digest.bytes got))
  | None -> Alcotest.fail "datagram not delivered");
  Alcotest.(check bool) "sender fragmented" true (sa.Bsd_socket.ip.Ip.ofragments >= 4);
  Alcotest.(check int) "receiver reassembled once" 1 sb.Bsd_socket.ip.Ip.reassembled

let test_udp_roundtrip () =
  let w, ma, sa, mb, sb = make_pair () in
  let ka = Thread.create_sched ma and kb = Thread.create_sched mb in
  Thread.install ka;
  Thread.install kb;
  let got = ref None in
  Thread.spawn kb ~name:"udp-server" (fun () ->
      let s = Bsd_socket.udp_socket sb in
      (match Bsd_socket.uso_bind s ~port:9999 with Ok () -> () | Error _ -> ());
      let src, sport, payload = Bsd_socket.uso_recvfrom s in
      got := Some (Oskit.string_of_ip src, sport, Bytes.to_string payload);
      (* Answer back. *)
      ignore (Bsd_socket.uso_sendto s ~buf:(Bytes.of_string "pong") ~pos:0 ~len:4 ~dst:src ~dport:sport));
  let answer = ref None in
  Thread.spawn ka ~name:"udp-client" (fun () ->
      let s = Bsd_socket.udp_socket sa in
      (match Bsd_socket.uso_bind s ~port:1234 with Ok () -> () | Error _ -> ());
      ignore
        (Bsd_socket.uso_sendto s ~buf:(Bytes.of_string "ping!") ~pos:0 ~len:5
           ~dst:(ip "10.1.0.2") ~dport:9999);
      let _, _, payload = Bsd_socket.uso_recvfrom s in
      answer := Some (Bytes.to_string payload));
  Machine.kick ma;
  Machine.kick mb;
  World.run w;
  Alcotest.(check (option (triple string int string))) "server saw datagram"
    (Some ("10.1.0.1", 1234, "ping!")) !got;
  Alcotest.(check (option string)) "client got reply" (Some "pong") !answer

let test_udp_checksum_rejects_corruption () =
  let w, ma, sa, _mb, sb = make_pair () in
  (* Corrupt every frame in transit by flipping a payload bit: attach a
     malicious hub port. *)
  let _ = w in
  let pcb = Udp.create_pcb sb.Bsd_socket.udp in
  (match Udp.bind sb.Bsd_socket.udp pcb ~port:7 with Ok () -> () | Error _ -> ());
  (* Build a frame by hand via the stack, then corrupt the UDP payload and
     inject directly into b's ether input. *)
  Machine.run_in ma (fun () ->
      let upcb = Udp.create_pcb sa.Bsd_socket.udp in
      ignore (Udp.bind sa.Bsd_socket.udp upcb ~port:8);
      Udp.output sa.Bsd_socket.udp upcb ~dst:(ip "10.1.0.2") ~dport:7
        ~src:(Bytes.of_string "AAAA") ~src_pos:0 ~len:4);
  (* Let the legit one arrive first. *)
  World.run w;
  Alcotest.(check int) "clean datagram accepted" 1 (Queue.length pcb.Udp.rcv_q);
  (* Now inject a corrupted copy straight into b's IP layer. *)
  let m = Mbuf.m_gethdr () in
  let off = Mbuf.m_put m 12 in
  let d = m.Mbuf.m_data in
  (* source port 8, dst 7, length 12, bogus checksum *)
  Bytes.set_uint16_be d off 8;
  Bytes.set_uint16_be d (off + 2) 7;
  Bytes.set_uint16_be d (off + 4) 12;
  Bytes.set_uint16_be d (off + 6) 0xdead;
  Bytes.blit_string "AAAA" 0 d (off + 8) 4;
  Ip.deliver sb.Bsd_socket.ip ~proto:17 ~src:(ip "10.1.0.1") ~dst:(ip "10.1.0.2") m;
  Alcotest.(check int) "corrupted datagram dropped" 1 (Queue.length pcb.Udp.rcv_q)

let suite =
  [ Alcotest.test_case "mbuf basics" `Quick test_mbuf_basics;
    Alcotest.test_case "mbuf adj" `Quick test_mbuf_adj;
    Alcotest.test_case "mbuf prepend headroom" `Quick test_mbuf_prepend_headroom;
    Alcotest.test_case "mbuf copym shares clusters" `Quick test_mbuf_copym_shares_clusters;
    Alcotest.test_case "mbuf pullup" `Quick test_mbuf_pullup;
    Alcotest.test_case "mbuf append" `Quick test_mbuf_append;
    Alcotest.test_case "skbuff ops" `Quick test_skbuff_ops;
    Alcotest.test_case "skb<->bufio self-recognition" `Quick test_skb_bufio_roundtrip;
    Alcotest.test_case "mbuf chain forces copy (send path)" `Quick
      test_mbuf_chain_forces_copy_in_linux_glue;
    Alcotest.test_case "single mbuf maps (no copy)" `Quick test_single_mbuf_maps_no_copy;
    Alcotest.test_case "skb->mbuf loan (receive path)" `Quick test_skb_to_mbuf_no_copy;
    Alcotest.test_case "cksum known vector" `Quick test_cksum_known_vector;
    Alcotest.test_case "cksum chain = flat" `Quick test_cksum_chain_equals_flat;
    QCheck_alcotest.to_alcotest prop_cksum_detects_single_bit_flips;
    QCheck_alcotest.to_alcotest prop_seq_total_order_window;
    Alcotest.test_case "seq wraparound" `Quick test_seq_wraparound;
    Alcotest.test_case "arp resolution" `Quick test_arp_resolution;
    Alcotest.test_case "icmp echo" `Quick test_icmp_echo;
    Alcotest.test_case "ip fragmentation" `Quick test_ip_fragmentation;
    Alcotest.test_case "udp roundtrip" `Quick test_udp_roundtrip;
    Alcotest.test_case "udp checksum rejects corruption" `Quick
      test_udp_checksum_rejects_corruption ]
