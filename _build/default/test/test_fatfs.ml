(* The Linux FAT16 component: on-disk format, cluster chains, 8.3 names,
   interchangeability with the NetBSD component behind the POSIX layer,
   and two file systems from two donors on one partitioned disk. *)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "fat error: %s" (Error.to_string e)

let with_fat f =
  let dev = Mem_blkio.make ~bytes:(1 * 1024 * 1024) () in
  let root = ok (Fat_glue.mkfs dev) in
  let env = Posix.create_env () in
  Posix.set_root env (Some root);
  f env root dev

let write_file env path content =
  let fd = ok (Posix.open_ env path (Posix.o_creat lor Posix.o_rdwr lor Posix.o_trunc)) in
  let b = Bytes.of_string content in
  let n = ok (Posix.write env fd b ~pos:0 ~len:(Bytes.length b)) in
  Alcotest.(check int) ("write " ^ path) (Bytes.length b) n;
  ok (Posix.close env fd)

let read_file env path =
  let fd = ok (Posix.open_ env path Posix.o_rdonly) in
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let rec loop () =
    match ok (Posix.read env fd chunk ~pos:0 ~len:1024) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        loop ()
  in
  loop ();
  ok (Posix.close env fd);
  Buffer.contents buf

let test_roundtrip () =
  with_fat (fun env _ _ ->
      write_file env "/README.TXT" "fat sixteen";
      Alcotest.(check string) "read back" "fat sixteen" (read_file env "/README.TXT"))

let test_83_names () =
  with_fat (fun env _ _ ->
      write_file env "/data.bin" "x";
      (* 8.3 is case-insensitive via uppercasing. *)
      Alcotest.(check string) "case-insensitive lookup" "x" (read_file env "/DATA.BIN");
      Alcotest.(check (list string)) "stored uppercase" [ "DATA.BIN" ]
        (ok (Posix.readdir env "/"));
      match Posix.open_ env "/waytoolongname.txt" (Posix.o_creat lor Posix.o_rdwr) with
      | Error Error.Nametoolong -> ()
      | _ -> Alcotest.fail "8.3 limit not enforced")

let test_subdirs_and_growth () =
  with_fat (fun env _ _ ->
      ok (Posix.mkdir env "/sub");
      (* More files than one cluster of directory entries (2048/32 = 64). *)
      for i = 1 to 80 do
        write_file env (Printf.sprintf "/sub/F%d.DAT" i) (string_of_int i)
      done;
      Alcotest.(check int) "directory grew across clusters" 80
        (List.length (ok (Posix.readdir env "/sub")));
      Alcotest.(check string) "spot check" "42" (read_file env "/sub/F42.DAT"))

let test_multicluster_file () =
  with_fat (fun env _ _ ->
      (* 20 KB spans ten 2 KB clusters. *)
      let content = String.init 20_000 (fun i -> Char.chr ((i * 11) land 0xff)) in
      write_file env "/BIG.DAT" content;
      Alcotest.(check string) "content hash" (Digest.to_hex (Digest.string content))
        (Digest.to_hex (Digest.string (read_file env "/BIG.DAT"))))

let test_unlink_frees_clusters () =
  with_fat (fun env root dev ->
      ignore root;
      write_file env "/A.DAT" (String.make 40_000 'a');
      ok (Posix.unlink env "/A.DAT");
      (* All clusters must be reusable: fill the volume again. *)
      write_file env "/B.DAT" (String.make 40_000 'b');
      Alcotest.(check int) "reused space" 40_000 (String.length (read_file env "/B.DAT"));
      ignore dev)

let test_persistence_remount () =
  let dev = Mem_blkio.make ~bytes:(1 * 1024 * 1024) () in
  (let root = ok (Fat_glue.mkfs dev) in
   let env = Posix.create_env () in
   Posix.set_root env (Some root);
   write_file env "/KEEP.TXT" "still here");
  let root2 = ok (Fat_glue.mount dev) in
  let env2 = Posix.create_env () in
  Posix.set_root env2 (Some root2);
  Alcotest.(check string) "survived remount" "still here" (read_file env2 "/KEEP.TXT");
  (* Sanity: the boot sector magic is where DOS would look. *)
  let boot = Bytes.create 512 in
  ignore (ok (dev.Io_if.bio_read ~buf:boot ~pos:0 ~offset:0 ~amount:512));
  Alcotest.(check int) "0x55AA signature" 0xaa55 (Bytes.get_uint16_le boot 510)

let test_rename_and_xdev () =
  with_fat (fun env root _ ->
      write_file env "/OLD.TXT" "payload";
      ok (Posix.mkdir env "/DIR");
      (match ok (Posix.lookup env "/DIR") with
      | Io_if.Node_dir d -> (
          match root.Io_if.d_rename "OLD.TXT" d "NEW.TXT" with
          | Ok () -> ()
          | Error e -> Alcotest.failf "rename: %s" (Error.to_string e))
      | _ -> Alcotest.fail "not a dir");
      Alcotest.(check string) "moved" "payload" (read_file env "/DIR/NEW.TXT");
      (* Renaming into a NetBSD directory is cross-device. *)
      let other = ok (Fs_glue.newfs (Mem_blkio.make ~bytes:(1 lsl 20) ())) in
      write_file env "/X.TXT" "x";
      match root.Io_if.d_rename "X.TXT" other "Y" with
      | Error Error.Xdev -> ()
      | _ -> Alcotest.fail "cross-fs rename must EXDEV")

let test_two_donors_one_disk () =
  (* The paper's interchangeability claim, concretely: one disk, two
     partitions, a NetBSD FFS on one and a Linux FAT on the other, both
     reached through identical COM interfaces from one POSIX tree. *)
  let dev = Mem_blkio.make ~bytes:(4 * 1024 * 1024) () in
  ok (Diskpart.write_label dev [ 0xA5, 64, 3072; 0x06, 3136, 4096 ]);
  let parts = ok (Diskpart.read_partitions dev) in
  let p_ffs = List.nth parts 0 and p_fat = List.nth parts 1 in
  let ffs_root = ok (Fs_glue.newfs (Diskpart.partition_blkio dev p_ffs)) in
  let fat_root = ok (Fat_glue.mkfs (Diskpart.partition_blkio dev p_fat)) in
  let env = Posix.create_env () in
  Posix.set_root env (Some ffs_root);
  write_file env "/on-ffs" "bsd bytes";
  let env_fat = Posix.create_env () in
  Posix.set_root env_fat (Some fat_root);
  write_file env_fat "/ONFAT.TXT" "dos bytes";
  Alcotest.(check string) "ffs side" "bsd bytes" (read_file env "/on-ffs");
  Alcotest.(check string) "fat side" "dos bytes" (read_file env_fat "/ONFAT.TXT");
  (* Flush the FFS buffer cache before abandoning this mount (FAT writes
     through, FFS delays). *)
  ignore (Fs_glue.sync_all ffs_root);
  (* Remount both and cross-check isolation. *)
  let ffs2 = ok (Fs_glue.mount (Diskpart.partition_blkio dev p_ffs)) in
  let fat2 = ok (Fat_glue.mount (Diskpart.partition_blkio dev p_fat)) in
  let e1 = Posix.create_env () and e2 = Posix.create_env () in
  Posix.set_root e1 (Some ffs2);
  Posix.set_root e2 (Some fat2);
  Alcotest.(check string) "ffs after remount" "bsd bytes" (read_file e1 "/on-ffs");
  Alcotest.(check string) "fat after remount" "dos bytes" (read_file e2 "/ONFAT.TXT")

(* Model-based property over random FAT operations. *)
let prop_fat_model =
  QCheck.Test.make ~name:"fat: random ops agree with model" ~count:25
    QCheck.(
      list (triple (int_range 0 2) (int_range 0 4) (string_of_size (QCheck.Gen.int_range 0 150))))
    (fun ops ->
      let dev = Mem_blkio.make ~bytes:(512 * 1024) () in
      let t = Linux_fatfs.mkfs dev in
      let model : (string, string) Hashtbl.t = Hashtbl.create 8 in
      let name i = Printf.sprintf "Q%d.DAT" i in
      List.iter
        (fun (action, idx, payload) ->
          let nm = name idx in
          match action with
          | 0 -> (
              (* create/overwrite *)
              try
                (match Linux_fatfs.dir_find t Linux_fatfs.Root nm with
                | Some e ->
                    Linux_fatfs.chain_free t e.Linux_fatfs.de_cluster;
                    Linux_fatfs.update_entry t Linux_fatfs.Root e ~cluster:0 ~size:0
                | None -> ignore (Linux_fatfs.create_file t Linux_fatfs.Root nm));
                let e = Option.get (Linux_fatfs.dir_find t Linux_fatfs.Root nm) in
                let head =
                  if payload = "" then 0
                  else
                    Linux_fatfs.file_write t ~head:e.Linux_fatfs.de_cluster ~off:0
                      ~len:(String.length payload) ~src:(Bytes.of_string payload) ~src_pos:0
                in
                Linux_fatfs.update_entry t Linux_fatfs.Root e ~cluster:head
                  ~size:(String.length payload);
                Hashtbl.replace model nm payload
              with Linux_fatfs.Fat_error _ -> ())
          | 1 -> (
              (* unlink *)
              try
                Linux_fatfs.remove t Linux_fatfs.Root nm ~want_dir:false;
                Hashtbl.remove model nm
              with Linux_fatfs.Fat_error _ -> ())
          | _ -> (
              (* append *)
              match Linux_fatfs.dir_find t Linux_fatfs.Root nm with
              | Some e when e.Linux_fatfs.de_attr land Linux_fatfs.attr_directory = 0 -> (
                  try
                    let head =
                      Linux_fatfs.file_write t ~head:e.Linux_fatfs.de_cluster
                        ~off:e.Linux_fatfs.de_size ~len:(String.length payload)
                        ~src:(Bytes.of_string payload) ~src_pos:0
                    in
                    Linux_fatfs.update_entry t Linux_fatfs.Root e ~cluster:head
                      ~size:(e.Linux_fatfs.de_size + String.length payload);
                    Hashtbl.replace model nm (Hashtbl.find model nm ^ payload)
                  with Linux_fatfs.Fat_error _ -> ())
              | Some _ | None -> ()))
        ops;
      Hashtbl.fold
        (fun nm expected acc ->
          acc
          &&
          match Linux_fatfs.dir_find t Linux_fatfs.Root nm with
          | None -> false
          | Some e ->
              let b = Bytes.create e.Linux_fatfs.de_size in
              let n =
                Linux_fatfs.file_read t ~head:e.Linux_fatfs.de_cluster
                  ~size:e.Linux_fatfs.de_size ~off:0 ~len:e.Linux_fatfs.de_size ~dst:b
                  ~dst_pos:0
              in
              n = String.length expected && Bytes.to_string b = expected)
        model true)

let suite =
  [ Alcotest.test_case "roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "8.3 names" `Quick test_83_names;
    Alcotest.test_case "subdirs + directory growth" `Quick test_subdirs_and_growth;
    Alcotest.test_case "multi-cluster file" `Quick test_multicluster_file;
    Alcotest.test_case "unlink frees clusters" `Quick test_unlink_frees_clusters;
    Alcotest.test_case "persistence + boot signature" `Quick test_persistence_remount;
    Alcotest.test_case "rename + EXDEV" `Quick test_rename_and_xdev;
    Alcotest.test_case "two donors, one disk" `Quick test_two_donors_one_disk;
    QCheck_alcotest.to_alcotest prop_fat_model ]
