(* TCP behaviour under adversity: packet loss, retransmission, fast
   retransmit, connection refusal, listen backlog, RST handling,
   simultaneous close — on the FreeBSD stack over the simulated wire. *)

let ip = Oskit.ip_of_string
let mask = ip "255.255.255.0"

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Error.to_string e)

type rig = {
  world : World.t;
  wire : Wire.t;
  ka : Thread.sched;
  kb : Thread.sched;
  ma : Machine.t;
  mb : Machine.t;
  sa : Bsd_socket.stack;
  sb : Bsd_socket.stack;
}

let fresh = ref 0

let make_rig () =
  incr fresh;
  let w = World.create () in
  let wire = Wire.create w in
  let mk name mac ipaddr =
    let machine = Machine.create ~name:(Printf.sprintf "%s-%d" name !fresh) w in
    let sched = Thread.create_sched machine in
    Thread.install sched;
    let nic = Nic.create ~machine ~wire ~mac ~irq:9 () in
    let stack = Bsd_socket.create_stack machine ~hwaddr:mac ~name in
    Native_if.attach stack nic;
    Bsd_socket.ifconfig stack ~addr:(ip ipaddr) ~mask;
    machine, sched, stack
  in
  let ma, ka, sa = mk "tcp-a" "\x02\x00\x00\x00\x01\x0a" "10.2.0.1" in
  let mb, kb, sb = mk "tcp-b" "\x02\x00\x00\x00\x01\x0b" "10.2.0.2" in
  { world = w; wire; ka; kb; ma; mb; sa; sb }

let spawn_server rig ?(port = 5001) received done_flag =
  Thread.spawn rig.kb ~name:"server" (fun () ->
      let ls = Bsd_socket.tcp_socket rig.sb in
      ok (Bsd_socket.so_bind ls ~port);
      ok (Bsd_socket.so_listen ls ~backlog:5);
      let conn = ok (Bsd_socket.so_accept ls) in
      let buf = Bytes.create 8192 in
      let rec loop () =
        match ok (Bsd_socket.so_recv conn ~buf ~pos:0 ~len:8192) with
        | 0 ->
            ignore (Bsd_socket.so_close conn);
            done_flag := true
        | n ->
            Buffer.add_subbytes received buf 0 n;
            loop ()
      in
      loop ());
  Machine.kick rig.mb

let spawn_client rig ?(port = 5001) data =
  Thread.spawn rig.ka ~name:"client" (fun () ->
      Kclock.sleep_ns 1_000_000;
      let s = Bsd_socket.tcp_socket rig.sa in
      ok (Bsd_socket.so_connect s ~dst:(ip "10.2.0.2") ~dport:port);
      let _ = ok (Bsd_socket.so_send s ~buf:data ~pos:0 ~len:(Bytes.length data)) in
      ok (Bsd_socket.so_close s));
  Machine.kick rig.ma

let test_loss_recovery () =
  let rig = make_rig () in
  (* Drop every 13th frame, both directions: data, ACKs, even SYNs. *)
  let n = ref 0 in
  Wire.set_fault_injector rig.wire
    (Some
       (fun _ ->
         incr n;
         !n mod 13 = 0));
  let bytes = 200 * 1024 in
  let data = Bytes.init bytes (fun i -> Char.chr ((i * 31) land 0xff)) in
  let received = Buffer.create bytes in
  let done_flag = ref false in
  spawn_server rig received done_flag;
  spawn_client rig data;
  World.run rig.world ~until:(fun () -> !done_flag);
  Alcotest.(check bool) "completed despite loss" true !done_flag;
  Alcotest.(check int) "no bytes lost or duplicated" bytes (Buffer.length received);
  Alcotest.(check string) "content intact" (Digest.to_hex (Digest.bytes data))
    (Digest.to_hex (Digest.bytes (Buffer.to_bytes received)));
  Alcotest.(check bool) "frames were actually dropped" true (Wire.frames_dropped rig.wire > 5);
  let stats = rig.sa.Bsd_socket.tcp.Tcp.stats in
  Alcotest.(check bool) "sender retransmitted" true
    (stats.Tcp.sndrexmitpack + stats.Tcp.fastrexmit > 0)

let test_fast_retransmit_on_single_drop () =
  let rig = make_rig () in
  (* Drop exactly one large data frame mid-flow. *)
  let dropped = ref false in
  let count = ref 0 in
  Wire.set_fault_injector rig.wire
    (Some
       (fun f ->
         if Bytes.length f > 1000 then incr count;
         if !count = 20 && not !dropped then begin
           dropped := true;
           true
         end
         else false));
  let bytes = 300 * 1024 in
  let data = Bytes.make bytes 'F' in
  let received = Buffer.create bytes in
  let done_flag = ref false in
  spawn_server rig received done_flag;
  spawn_client rig data;
  World.run rig.world ~until:(fun () -> !done_flag);
  Alcotest.(check bool) "completed" true !done_flag;
  Alcotest.(check bool) "single drop happened" true !dropped;
  let stats = rig.sa.Bsd_socket.tcp.Tcp.stats in
  Alcotest.(check bool) "recovered via fast retransmit (no timeout needed)" true
    (stats.Tcp.fastrexmit >= 1);
  Alcotest.(check bool) "receiver saw out-of-order segments" true
    (rig.sb.Bsd_socket.tcp.Tcp.stats.Tcp.rcvoo >= 1)

let test_connection_refused () =
  let rig = make_rig () in
  let result = ref None in
  Thread.spawn rig.ka (fun () ->
      let s = Bsd_socket.tcp_socket rig.sa in
      result := Some (Bsd_socket.so_connect s ~dst:(ip "10.2.0.2") ~dport:4444));
  Machine.kick rig.ma;
  World.run rig.world ~until:(fun () -> !result <> None);
  match !result with
  | Some (Error Error.Connrefused) -> ()
  | Some (Ok ()) -> Alcotest.fail "connect to closed port succeeded?"
  | Some (Error e) -> Alcotest.failf "wrong error: %s" (Error.to_string e)
  | None -> Alcotest.fail "no result"

let test_graceful_close_sequence () =
  let rig = make_rig () in
  let received = Buffer.create 64 in
  let done_flag = ref false in
  spawn_server rig received done_flag;
  let client_states = ref [] in
  Thread.spawn rig.ka ~name:"client" (fun () ->
      Kclock.sleep_ns 1_000_000;
      let s = Bsd_socket.tcp_socket rig.sa in
      ok (Bsd_socket.so_connect s ~dst:(ip "10.2.0.2") ~dport:5001);
      let _ = ok (Bsd_socket.so_send s ~buf:(Bytes.of_string "bye") ~pos:0 ~len:3) in
      ok (Bsd_socket.so_close s);
      (* Track the state machine through the close. *)
      let pcb = s.Bsd_socket.pcb in
      (* Poll the state machine on the virtual clock (a yield-spin would
         starve the event loop — cooperative threads never preempt). *)
      let rec watch last =
        let st = pcb.Tcp.t_state in
        if st <> last then client_states := st :: !client_states;
        if st <> Tcp.Closed then begin
          Kclock.sleep_ns 50_000_000;
          watch st
        end
      in
      watch Tcp.Closed);
  Machine.kick rig.ma;
  (* Run past the 2MSL timer so TIME_WAIT expires. *)
  World.run rig.world ~until:(fun () ->
      !done_flag && List.mem Tcp.Closed !client_states);
  Alcotest.(check bool) "passed through FIN_WAIT" true
    (List.mem Tcp.Fin_wait_1 !client_states || List.mem Tcp.Fin_wait_2 !client_states);
  Alcotest.(check bool) "reached TIME_WAIT then CLOSED" true
    (List.mem Tcp.Time_wait !client_states && List.mem Tcp.Closed !client_states)

let test_backlog_limit () =
  let rig = make_rig () in
  (* A listener with backlog 1 that never accepts: the first connection
     establishes (into the queue); later SYNs are dropped and eventually
     time out on the client side. *)
  Thread.spawn rig.kb ~name:"lazy-server" (fun () ->
      let ls = Bsd_socket.tcp_socket rig.sb in
      ok (Bsd_socket.so_bind ls ~port:5001);
      ok (Bsd_socket.so_listen ls ~backlog:1);
      (* Sleep forever. *)
      Sleep_record.sleep (Sleep_record.create ()));
  Machine.kick rig.mb;
  let first = ref None and second = ref None in
  Thread.spawn rig.ka (fun () ->
      Kclock.sleep_ns 1_000_000;
      let s1 = Bsd_socket.tcp_socket rig.sa in
      first := Some (Bsd_socket.so_connect s1 ~dst:(ip "10.2.0.2") ~dport:5001);
      let s2 = Bsd_socket.tcp_socket rig.sa in
      second := Some (Bsd_socket.so_connect s2 ~dst:(ip "10.2.0.2") ~dport:5001));
  Machine.kick rig.ma;
  World.set_fuel rig.world 3_000_000;
  (try World.run rig.world ~until:(fun () -> !second <> None) with World.Out_of_fuel -> ());
  Alcotest.(check bool) "first connection accepted into backlog" true
    (match !first with Some (Ok ()) -> true | _ -> false);
  Alcotest.(check bool) "second connection failed (queue full)" true
    (match !second with Some (Error _) -> true | _ -> false)

let test_window_flow_control () =
  let rig = make_rig () in
  (* The server accepts but reads nothing for a while: the sender must be
     throttled by the advertised window, not crash or spin. *)
  let release = Sleep_record.create () in
  let received = Buffer.create 1024 in
  let done_flag = ref false in
  Thread.spawn rig.kb ~name:"slow-server" (fun () ->
      let ls = Bsd_socket.tcp_socket rig.sb in
      ok (Bsd_socket.so_bind ls ~port:5001);
      ok (Bsd_socket.so_listen ls ~backlog:2);
      let conn = ok (Bsd_socket.so_accept ls) in
      (* Stall: let the sender fill the 48KB receive buffer. *)
      Sleep_record.sleep release;
      let buf = Bytes.create 8192 in
      let rec loop () =
        match ok (Bsd_socket.so_recv conn ~buf ~pos:0 ~len:8192) with
        | 0 -> done_flag := true
        | n ->
            Buffer.add_subbytes received buf 0 n;
            loop ()
      in
      loop ());
  Machine.kick rig.mb;
  let bytes = 200 * 1024 in
  let sender_blocked_at = ref 0 in
  Thread.spawn rig.ka ~name:"client" (fun () ->
      Kclock.sleep_ns 1_000_000;
      let s = Bsd_socket.tcp_socket rig.sa in
      ok (Bsd_socket.so_connect s ~dst:(ip "10.2.0.2") ~dport:5001);
      let data = Bytes.make bytes 'W' in
      (* After ~2 (virtual) seconds, release the reader. *)
      ignore (Machine.after rig.ma 2_000_000_000 (fun () -> Sleep_record.wakeup release));
      sender_blocked_at := Machine.now rig.ma;
      let _ = ok (Bsd_socket.so_send s ~buf:data ~pos:0 ~len:bytes) in
      ok (Bsd_socket.so_close s));
  Machine.kick rig.ma;
  World.run rig.world ~until:(fun () -> !done_flag);
  Alcotest.(check int) "every byte arrived after unblocking" bytes (Buffer.length received);
  (* The transfer cannot have completed before the reader was released. *)
  Alcotest.(check bool) "flow control held the sender" true
    (World.now rig.world >= 2_000_000_000)

let test_rst_on_abort () =
  let rig = make_rig () in
  let received = Buffer.create 64 in
  let server_err = ref None in
  Thread.spawn rig.kb ~name:"server" (fun () ->
      let ls = Bsd_socket.tcp_socket rig.sb in
      ok (Bsd_socket.so_bind ls ~port:5001);
      ok (Bsd_socket.so_listen ls ~backlog:2);
      let conn = ok (Bsd_socket.so_accept ls) in
      let buf = Bytes.create 1024 in
      let rec loop () =
        match Bsd_socket.so_recv conn ~buf ~pos:0 ~len:1024 with
        | Ok 0 -> server_err := Some (Ok ())
        | Ok n ->
            Buffer.add_subbytes received buf 0 n;
            loop ()
        | Error e -> server_err := Some (Error e)
      in
      loop ());
  Machine.kick rig.mb;
  Thread.spawn rig.ka ~name:"client" (fun () ->
      Kclock.sleep_ns 1_000_000;
      let s = Bsd_socket.tcp_socket rig.sa in
      ok (Bsd_socket.so_connect s ~dst:(ip "10.2.0.2") ~dport:5001);
      let _ = ok (Bsd_socket.so_send s ~buf:(Bytes.of_string "data") ~pos:0 ~len:4) in
      Kclock.sleep_ns 300_000_000 (* let the delayed ACK cycle settle *);
      let _ = Bsd_socket.so_abort s in
      ());
  Machine.kick rig.ma;
  World.run rig.world ~until:(fun () -> !server_err <> None);
  match !server_err with
  | Some (Error Error.Connreset) -> ()
  | Some (Ok ()) -> Alcotest.fail "server saw clean EOF, expected RST"
  | Some (Error e) -> Alcotest.failf "wrong error: %s" (Error.to_string e)
  | None -> Alcotest.fail "no outcome"

let test_linux_loss_recovery () =
  (* The Linux stack recovers from loss too (coarser: timer-driven). *)
  Clientos.reset_globals ();
  let tb = Clientos.make_testbed ~models:("3c59x", "lance") () in
  let n = ref 0 in
  Wire.set_fault_injector tb.Clientos.wire
    (Some
       (fun _ ->
         incr n;
         !n mod 17 = 0));
  let sa = Clientos.linux_host tb.Clientos.host_a ~ip:(ip "10.0.0.1") ~mask in
  let sb = Clientos.linux_host tb.Clientos.host_b ~ip:(ip "10.0.0.2") ~mask in
  let bytes = 100 * 1024 in
  let data = Bytes.init bytes (fun i -> Char.chr ((i * 13) land 0xff)) in
  let received = Buffer.create bytes in
  let done_flag = ref false in
  Clientos.spawn tb.Clientos.host_b (fun () ->
      let ls = Linux_inet.socket sb in
      Linux_inet.bind sb ls ~port:80;
      Linux_inet.listen sb ls ~backlog:2;
      let conn = ok (Linux_inet.accept sb ls) in
      let buf = Bytes.create 4096 in
      let rec loop () =
        match ok (Linux_inet.recv sb conn ~buf ~pos:0 ~len:4096) with
        | 0 -> done_flag := true
        | n ->
            Buffer.add_subbytes received buf 0 n;
            loop ()
      in
      loop ());
  Clientos.spawn tb.Clientos.host_a (fun () ->
      Kclock.sleep_ns 1_000_000;
      let s = Linux_inet.socket sa in
      ok (Linux_inet.connect sa s ~dst:(ip "10.0.0.2") ~dport:80);
      let _ = ok (Linux_inet.send sa s ~buf:data ~pos:0 ~len:bytes) in
      Linux_inet.close sa s);
  Clientos.run tb ~until:(fun () -> !done_flag);
  Alcotest.(check string) "content intact under loss" (Digest.to_hex (Digest.bytes data))
    (Digest.to_hex (Digest.bytes (Buffer.to_bytes received)));
  Alcotest.(check bool) "linux retransmitted" true (sa.Linux_inet.rexmits > 0)

let suite =
  [ Alcotest.test_case "loss recovery (periodic drops)" `Quick test_loss_recovery;
    Alcotest.test_case "fast retransmit on single drop" `Quick
      test_fast_retransmit_on_single_drop;
    Alcotest.test_case "connection refused" `Quick test_connection_refused;
    Alcotest.test_case "graceful close states" `Quick test_graceful_close_sequence;
    Alcotest.test_case "listen backlog limit" `Quick test_backlog_limit;
    Alcotest.test_case "receive-window flow control" `Quick test_window_flow_control;
    Alcotest.test_case "RST on abort" `Quick test_rst_on_abort;
    Alcotest.test_case "linux stack loss recovery" `Quick test_linux_loss_recovery ]
