(* Minimal C library: the printf override chain, format conformance
   against OCaml's Printf on common cases, C string semantics, strtol,
   malloc hooks. *)

let test_override_chain () =
  Ministdio.reset ();
  (* Default: everything lands in the capture buffer via putchar. *)
  Ministdio.printf "a%db" [ Ministdio.Int 1 ];
  Alcotest.(check string) "default capture" "a1b" (Ministdio.captured ());
  (* Override only putchar: printf output must follow (the paper's point:
     console output from just one function). *)
  let sink = Buffer.create 16 in
  Ministdio.set_putchar (Buffer.add_char sink);
  Ministdio.printf "x=%d" [ Ministdio.Int 42 ];
  Alcotest.(check string) "putchar override feeds printf" "x=42" (Buffer.contents sink);
  (* Override puts_raw wholesale: putchar no longer sees printf. *)
  let sink2 = Buffer.create 16 in
  Ministdio.set_puts_raw (Buffer.add_string sink2);
  Ministdio.printf "y" [];
  Alcotest.(check string) "puts_raw override" "y" (Buffer.contents sink2);
  Alcotest.(check string) "putchar not used anymore" "x=42" (Buffer.contents sink);
  Ministdio.reset ()

let test_puts_newline () =
  Ministdio.reset ();
  Ministdio.puts "hello";
  Alcotest.(check string) "C puts appends newline" "hello\n" (Ministdio.captured ());
  Ministdio.reset ()

let check_fmt expected fmt args =
  Alcotest.(check string) (Printf.sprintf "format %S" fmt) expected
    (Ministdio.sprintf fmt args)

let test_formats () =
  let open Ministdio in
  check_fmt "42" "%d" [ Int 42 ];
  check_fmt "-42" "%d" [ Int (-42) ];
  check_fmt "+42" "%+d" [ Int 42 ];
  check_fmt " 42" "% d" [ Int 42 ];
  check_fmt "   42" "%5d" [ Int 42 ];
  check_fmt "42   " "%-5d" [ Int 42 ];
  check_fmt "00042" "%05d" [ Int 42 ];
  check_fmt "-0042" "%05d" [ Int (-42) ];
  check_fmt "002a" "%04x" [ Int 42 ];
  check_fmt "2A" "%X" [ Int 42 ];
  check_fmt "0x2a" "%#x" [ Int 42 ];
  check_fmt "052" "%#o" [ Int 42 ];
  check_fmt "52" "%o" [ Int 42 ];
  check_fmt "0" "%d" [ Int 0 ];
  check_fmt "0" "%x" [ Int 0 ];
  check_fmt "hello" "%s" [ Str "hello" ];
  check_fmt "he" "%.2s" [ Str "hello" ];
  check_fmt "  hello" "%7s" [ Str "hello" ];
  check_fmt "hello  " "%-7s" [ Str "hello" ];
  check_fmt "c" "%c" [ Chr 'c' ];
  check_fmt "100%" "%d%%" [ Int 100 ];
  check_fmt "007" "%.3d" [ Int 7 ];
  check_fmt "  007" "%5.3d" [ Int 7 ];
  check_fmt "ab=12,cd" "ab=%d,%s" [ Int 12; Str "cd" ];
  check_fmt "0xdeadbeef" "%p" [ Ptr 0xdeadbeef ];
  (* Width from '*'. *)
  check_fmt "   42" "%*d" [ Int 5; Int 42 ];
  (* Length modifiers accepted and ignored. *)
  check_fmt "9" "%ld" [ Int 9 ];
  check_fmt "9" "%llu" [ Int 9 ]

let test_unsigned_wrap () =
  (* 32-bit wraparound semantics for %u/%x, as legacy code expects. *)
  let open Ministdio in
  check_fmt "4294967295" "%u" [ Int (-1) ];
  check_fmt "ffffffff" "%x" [ Int (-1) ]

(* Cross-check a batch of generated cases against OCaml's Printf for the
   directives both support. *)
let prop_printf_conformance =
  QCheck.Test.make ~name:"printf: %d/%x/%s agree with Printf" ~count:300
    QCheck.(triple int (int_range 0 12) (string_of_size (QCheck.Gen.int_range 0 10)))
    (fun (n, width, s) ->
      let mine =
        Ministdio.sprintf
          (Printf.sprintf "%%%dd|%%x|%%s" width)
          [ Ministdio.Int n; Ministdio.Int (abs n land 0xffffffff); Ministdio.Str s ]
      in
      let theirs = Printf.sprintf "%*d|%x|%s" width n (abs n land 0xffffffff) s in
      String.equal mine theirs)

let test_snprintf () =
  let s, n = Ministdio.snprintf ~size:6 "hello world %d" [ Ministdio.Int 1 ] in
  Alcotest.(check string) "truncated" "hello" s;
  Alcotest.(check int) "reports full length" 13 n

let test_cstrings () =
  let b = Minstring.cstr "hello" in
  Alcotest.(check int) "strlen" 5 (Minstring.strlen b ~pos:0);
  Alcotest.(check string) "of_cstr" "hello" (Minstring.of_cstr b ~pos:0);
  let dst = Bytes.make 32 'Z' in
  Minstring.strcpy ~dst ~dst_pos:0 ~src:b ~src_pos:0;
  Alcotest.(check string) "strcpy" "hello" (Minstring.of_cstr dst ~pos:0);
  Minstring.strcat ~dst ~dst_pos:0 ~src:(Minstring.cstr ", world") ~src_pos:0;
  Alcotest.(check string) "strcat" "hello, world" (Minstring.of_cstr dst ~pos:0)

let test_strncpy_pads () =
  let dst = Bytes.make 8 'Z' in
  Minstring.strncpy ~dst ~dst_pos:0 ~src:(Minstring.cstr "ab") ~src_pos:0 ~n:5;
  Alcotest.(check string) "copied + NUL padding" "ab\000\000\000ZZZ" (Bytes.to_string dst)

let test_strcmp () =
  let cmp a b = Minstring.strcmp (Minstring.cstr a) ~pos1:0 (Minstring.cstr b) ~pos2:0 in
  Alcotest.(check bool) "equal" true (cmp "abc" "abc" = 0);
  Alcotest.(check bool) "less" true (cmp "abc" "abd" < 0);
  Alcotest.(check bool) "prefix less" true (cmp "ab" "abc" < 0);
  let ncmp a b n =
    Minstring.strncmp (Minstring.cstr a) ~pos1:0 (Minstring.cstr b) ~pos2:0 ~n
  in
  Alcotest.(check bool) "strncmp stops at n" true (ncmp "abcX" "abcY" 3 = 0)

let test_strchr_strstr () =
  let b = Minstring.cstr "hello world" in
  Alcotest.(check (option int)) "strchr" (Some 4) (Minstring.strchr b ~pos:0 'o');
  Alcotest.(check (option int)) "strrchr" (Some 7) (Minstring.strrchr b ~pos:0 'o');
  Alcotest.(check (option int)) "strchr missing" None (Minstring.strchr b ~pos:0 'z');
  Alcotest.(check (option int)) "strstr" (Some 6) (Minstring.strstr b ~pos:0 "world");
  Alcotest.(check (option int)) "strstr missing" None (Minstring.strstr b ~pos:0 "xyz")

let test_strtol () =
  let t s base = fst (Minstring.strtol s ~pos:0 ~base) in
  Alcotest.(check int) "decimal" 123 (t "123" 10);
  Alcotest.(check int) "negative" (-45) (t "  -45xyz" 10);
  Alcotest.(check int) "hex auto" 0xff (t "0xff" 0);
  Alcotest.(check int) "octal auto" 8 (t "010" 0);
  Alcotest.(check int) "hex explicit" 0xab (t "ab" 16);
  let v, stop = Minstring.strtol "12abc" ~pos:0 ~base:10 in
  Alcotest.(check (pair int int)) "endptr" (12, 2) (v, stop)

let test_malloc_stats () =
  Malloc.reset_hooks ();
  Malloc.reset_stats ();
  let b = Malloc.malloc 100 in
  Alcotest.(check int) "size" 100 (Bytes.length b);
  Alcotest.(check char) "poisoned" Malloc.poison (Bytes.get b 50);
  let z = Malloc.calloc 10 in
  Alcotest.(check char) "calloc zeroes" '\000' (Bytes.get z 5);
  Malloc.free b;
  let r = Malloc.realloc z 20 in
  Alcotest.(check int) "realloc size" 20 (Bytes.length r);
  Alcotest.(check char) "realloc preserves" '\000' (Bytes.get r 9);
  Alcotest.(check bool) "stats counted" true (Malloc.stats.Malloc.allocs >= 3)

let test_ctype () =
  Alcotest.(check bool) "isdigit" true (Minctype.isdigit '7');
  Alcotest.(check bool) "isalpha" true (Minctype.isalpha 'q');
  Alcotest.(check bool) "isspace" true (Minctype.isspace '\t');
  Alcotest.(check char) "toupper" 'A' (Minctype.toupper 'a');
  Alcotest.(check char) "tolower" 'z' (Minctype.tolower 'Z');
  Alcotest.(check (option int)) "digit_value hex" (Some 15) (Minctype.digit_value 'f');
  Alcotest.(check (option int)) "digit_value none" None (Minctype.digit_value '!')

let suite =
  [ Alcotest.test_case "printf override chain" `Quick test_override_chain;
    Alcotest.test_case "puts newline" `Quick test_puts_newline;
    Alcotest.test_case "format directives" `Quick test_formats;
    Alcotest.test_case "unsigned 32-bit wrap" `Quick test_unsigned_wrap;
    QCheck_alcotest.to_alcotest prop_printf_conformance;
    Alcotest.test_case "snprintf truncation" `Quick test_snprintf;
    Alcotest.test_case "C strings" `Quick test_cstrings;
    Alcotest.test_case "strncpy pads" `Quick test_strncpy_pads;
    Alcotest.test_case "strcmp/strncmp" `Quick test_strcmp;
    Alcotest.test_case "strchr/strstr" `Quick test_strchr_strstr;
    Alcotest.test_case "strtol" `Quick test_strtol;
    Alcotest.test_case "malloc defaults" `Quick test_malloc_stats;
    Alcotest.test_case "ctype" `Quick test_ctype ]
