(* The simulated testbed itself: event world, cost charging, physical
   memory, interrupt controller, wire serialization, NIC/disk/serial/timer
   device models. *)

let test_world_ordering () =
  let w = World.create () in
  let log = ref [] in
  ignore (World.at w 300 (fun () -> log := 3 :: !log));
  ignore (World.at w 100 (fun () -> log := 1 :: !log));
  ignore (World.at w 200 (fun () -> log := 2 :: !log));
  World.run w;
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check int) "clock at last event" 300 (World.now w)

let test_world_same_time_fifo () =
  let w = World.create () in
  let log = ref [] in
  ignore (World.at w 100 (fun () -> log := 'a' :: !log));
  ignore (World.at w 100 (fun () -> log := 'b' :: !log));
  World.run w;
  Alcotest.(check (list char)) "FIFO at equal times" [ 'a'; 'b' ] (List.rev !log)

let test_world_cancel () =
  let w = World.create () in
  let fired = ref false in
  let ev = World.at w 50 (fun () -> fired := true) in
  World.cancel ev;
  World.run w;
  Alcotest.(check bool) "cancelled event silent" false !fired

let test_world_fuel () =
  let w = World.create () in
  World.set_fuel w 10;
  let rec rearm () = ignore (World.after w 1 rearm) in
  rearm ();
  Alcotest.check_raises "runaway detected" World.Out_of_fuel (fun () -> World.run w)

let test_cost_charging () =
  let w = World.create () in
  let m = Machine.create ~name:"cost-pc" w in
  Machine.run_in m (fun () ->
      let t0 = Machine.now m in
      Cost.charge_cycles 200 (* 200 cycles @ 200MHz = 1000 ns *);
      Alcotest.(check int) "cycles to ns" (t0 + 1000) (Machine.now m));
  (* Outside a machine, charges are dropped (user-mode use). *)
  Cost.charge_cycles 1

let test_cost_counters () =
  let w = World.create () in
  let m = Machine.create ~name:"ctr-pc" w in
  Cost.reset_counters ();
  Machine.run_in m (fun () ->
      Cost.charge_copy 100;
      Cost.charge_copy 50;
      Cost.charge_glue_crossing ());
  Alcotest.(check int) "copies" 2 Cost.counters.Cost.copies;
  Alcotest.(check int) "bytes" 150 Cost.counters.Cost.copied_bytes;
  Alcotest.(check int) "crossings" 1 Cost.counters.Cost.glue_crossings;
  Cost.reset_counters ()

let test_physmem () =
  let ram = Physmem.create ~bytes:8192 in
  Physmem.set32 ram 100 0xdeadbeefl;
  Alcotest.(check int32) "32-bit roundtrip" 0xdeadbeefl (Physmem.get32 ram 100);
  Physmem.set16 ram 200 0xabcd;
  Alcotest.(check int) "16-bit roundtrip" 0xabcd (Physmem.get16 ram 200);
  Alcotest.(check bool) "fault below" true
    (try
       ignore (Physmem.get8 ram (-1));
       false
     with Physmem.Fault _ -> true);
  Alcotest.(check bool) "fault above" true
    (try
       Physmem.set8 ram 8192 1;
       false
     with Physmem.Fault _ -> true);
  let src = Bytes.of_string "hello" in
  Physmem.blit_from_bytes ram ~src ~src_pos:0 ~dst_addr:4000 ~len:5;
  let dst = Bytes.create 5 in
  Physmem.blit_to_bytes ram ~src_addr:4000 ~dst ~dst_pos:0 ~len:5;
  Alcotest.(check string) "blit roundtrip" "hello" (Bytes.to_string dst)

let test_irq_mask_and_pending () =
  let w = World.create () in
  let m = Machine.create ~name:"irq-pc" w in
  let hits = ref 0 in
  Machine.set_irq_handler m ~irq:5 (fun () -> incr hits);
  Machine.mask_irq m ~irq:5;
  Machine.raise_irq m ~irq:5;
  Alcotest.(check int) "masked: latched, not delivered" 0 !hits;
  Machine.run_in m (fun () -> Machine.unmask_irq m ~irq:5);
  Alcotest.(check int) "delivered on unmask" 1 !hits

let test_irq_disable_enable () =
  let w = World.create () in
  let m = Machine.create ~name:"cli-pc" w in
  let hits = ref 0 in
  Machine.set_irq_handler m ~irq:3 (fun () -> incr hits);
  Machine.run_in m (fun () ->
      Machine.with_interrupts_disabled m (fun () ->
          Machine.raise_irq m ~irq:3;
          Alcotest.(check int) "held while disabled" 0 !hits);
      Alcotest.(check int) "delivered at enable" 1 !hits)

let test_irq_priority () =
  let w = World.create () in
  let m = Machine.create ~name:"pri-pc" w in
  let order = ref [] in
  Machine.set_irq_handler m ~irq:7 (fun () -> order := 7 :: !order);
  Machine.set_irq_handler m ~irq:2 (fun () -> order := 2 :: !order);
  Machine.run_in m (fun () ->
      Machine.with_interrupts_disabled m (fun () ->
          Machine.raise_irq m ~irq:7;
          Machine.raise_irq m ~irq:2));
  Alcotest.(check (list int)) "lowest line first" [ 2; 7 ] (List.rev !order)

let test_wire_serialization () =
  let w = World.create () in
  let wire = Wire.create ~bandwidth_bps:100_000_000 ~latency_ns:1000 w in
  let got = ref [] in
  let _p1 = Wire.attach wire ~rx:(fun f -> got := Bytes.length f :: !got) in
  let p2 = Wire.attach wire ~rx:(fun _ -> ()) in
  (* A 1500-byte frame at 100 Mb/s: (1500+24 framing) * 80ns = 121920ns +
     1000ns propagation. *)
  let arrival = Wire.send wire p2 (Bytes.create 1500) ~at:0 in
  Alcotest.(check int) "serialization + latency" (((1500 + 24) * 80) + 1000) arrival;
  World.run w;
  Alcotest.(check (list int)) "delivered to the other station" [ 1500 ] !got

let test_wire_busy_queueing () =
  let w = World.create () in
  let wire = Wire.create w in
  let p = Wire.attach wire ~rx:(fun _ -> ()) in
  let a1 = Wire.send wire p (Bytes.create 1000) ~at:0 in
  let a2 = Wire.send wire p (Bytes.create 1000) ~at:0 in
  Alcotest.(check bool) "second frame waits for the medium" true (a2 > a1)

let test_nic_filtering () =
  let w = World.create () in
  let wire = Wire.create w in
  let ma = Machine.create ~name:"nic-a" w and mb = Machine.create ~name:"nic-b" w in
  let na = Nic.create ~machine:ma ~wire ~mac:"\x02\x00\x00\x00\x00\x01" ~irq:9 () in
  let nb = Nic.create ~machine:mb ~wire ~mac:"\x02\x00\x00\x00\x00\x02" ~irq:9 () in
  let frame_to dst =
    let f = Bytes.make 64 '\000' in
    Bytes.blit_string dst 0 f 0 6;
    f
  in
  Machine.run_in ma (fun () -> Nic.transmit na (frame_to "\x02\x00\x00\x00\x00\x02"));
  Machine.run_in ma (fun () -> Nic.transmit na (frame_to "\x02\x00\x00\x00\x00\x99"));
  Machine.run_in ma (fun () -> Nic.transmit na (frame_to Nic.broadcast));
  World.run w;
  Alcotest.(check int) "unicast + broadcast accepted, foreign dropped" 2 (Nic.rx_count nb)

let test_disk_rw () =
  let w = World.create () in
  let m = Machine.create ~name:"disk-pc" w in
  let disk = Disk.create ~machine:m ~sectors:128 ~irq:14 () in
  let completions = ref [] in
  Machine.set_irq_handler m ~irq:14 (fun () ->
      let rec drain () =
        match Disk.take_completion disk with
        | Some c ->
            completions := c :: !completions;
            drain ()
        | None -> ()
      in
      drain ());
  let data = Bytes.make 1024 'D' in
  Machine.run_in m (fun () -> ignore (Disk.submit disk (Disk.Write { start = 4; data })));
  World.run w;
  Machine.run_in m (fun () -> ignore (Disk.submit disk (Disk.Read { start = 4; count = 2 })));
  World.run w;
  (match !completions with
  | [ { Disk.result = Ok read_back; _ }; { Disk.result = Ok _; _ } ] ->
      Alcotest.(check string) "read back what was written" (Bytes.to_string data)
        (Bytes.to_string read_back)
  | l -> Alcotest.failf "expected 2 completions, got %d" (List.length l));
  Alcotest.(check bool) "mechanics took time" true (World.now w > 8_000_000)

let test_disk_invalid () =
  let w = World.create () in
  let m = Machine.create ~name:"disk2-pc" w in
  let disk = Disk.create ~machine:m ~sectors:16 ~irq:14 () in
  Machine.run_in m (fun () ->
      ignore (Disk.submit disk (Disk.Read { start = 14; count = 10 })));
  World.run w;
  match Disk.take_completion disk with
  | Some { Disk.result = Error Error.Inval; _ } -> ()
  | _ -> Alcotest.fail "expected EINVAL completion"

let test_serial_loopback () =
  let w = World.create () in
  let ma = Machine.create ~name:"ser-a" w and mb = Machine.create ~name:"ser-b" w in
  let sa = Serial.create ~machine:ma ~irq:4 () in
  let sb = Serial.create ~machine:mb ~irq:4 () in
  Serial.connect sa sb;
  Machine.run_in ma (fun () -> Serial.write_string sa "ping");
  World.run w;
  let buf = Buffer.create 4 in
  let rec drain () =
    match Serial.read_byte sb with
    | Some c ->
        Buffer.add_char buf (Char.chr c);
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check string) "bytes crossed the line in order" "ping" (Buffer.contents buf)

let test_serial_capture () =
  let w = World.create () in
  let m = Machine.create ~name:"con-pc" w in
  let s = Serial.create ~machine:m ~irq:4 () in
  Machine.run_in m (fun () -> Serial.write_string s "console text");
  Alcotest.(check string) "unconnected port captures" "console text" (Serial.captured_output s)

let test_timer_periodic () =
  let w = World.create () in
  let m = Machine.create ~name:"tmr-pc" w in
  let t = Timer_dev.create ~machine:m ~irq:0 in
  let ticks = ref 0 in
  Machine.set_irq_handler m ~irq:0 (fun () ->
      incr ticks;
      if !ticks >= 5 then Timer_dev.stop t);
  Machine.run_in m (fun () -> Timer_dev.set_periodic t ~interval_ns:1_000_000);
  World.run w;
  Alcotest.(check int) "five ticks then stop" 5 !ticks;
  Alcotest.(check bool) "at 1ms intervals" true (World.now w >= 5_000_000)

let test_timer_oneshot () =
  let w = World.create () in
  let m = Machine.create ~name:"tmr2-pc" w in
  let t = Timer_dev.create ~machine:m ~irq:0 in
  let ticks = ref 0 in
  Machine.set_irq_handler m ~irq:0 (fun () -> incr ticks);
  Machine.run_in m (fun () -> Timer_dev.set_oneshot t ~delay_ns:500);
  World.run w;
  Alcotest.(check int) "exactly one tick" 1 !ticks

let suite =
  [ Alcotest.test_case "world ordering" `Quick test_world_ordering;
    Alcotest.test_case "world same-time FIFO" `Quick test_world_same_time_fifo;
    Alcotest.test_case "world cancel" `Quick test_world_cancel;
    Alcotest.test_case "world fuel" `Quick test_world_fuel;
    Alcotest.test_case "cost charging" `Quick test_cost_charging;
    Alcotest.test_case "cost counters" `Quick test_cost_counters;
    Alcotest.test_case "physmem" `Quick test_physmem;
    Alcotest.test_case "irq mask/pending" `Quick test_irq_mask_and_pending;
    Alcotest.test_case "irq disable/enable" `Quick test_irq_disable_enable;
    Alcotest.test_case "irq priority order" `Quick test_irq_priority;
    Alcotest.test_case "wire serialization" `Quick test_wire_serialization;
    Alcotest.test_case "wire busy queueing" `Quick test_wire_busy_queueing;
    Alcotest.test_case "nic filtering" `Quick test_nic_filtering;
    Alcotest.test_case "disk read/write" `Quick test_disk_rw;
    Alcotest.test_case "disk invalid op" `Quick test_disk_invalid;
    Alcotest.test_case "serial loopback" `Quick test_serial_loopback;
    Alcotest.test_case "serial capture" `Quick test_serial_capture;
    Alcotest.test_case "timer periodic" `Quick test_timer_periodic;
    Alcotest.test_case "timer oneshot" `Quick test_timer_oneshot ]
