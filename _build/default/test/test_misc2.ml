(* Coverage for the smaller supporting pieces: the Section 5 POSIX odds
   and ends, the BSD event-hash sleep/wakeup, the Linux environment
   emulation, the kernel clock, and the sockbuf. *)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "error: %s" (Error.to_string e)

(* ---- posix: getrusage / signal / select ---- *)

let test_getrusage () =
  let env = Posix.create_env () in
  Alcotest.(check int) "default time source" 0 (Posix.getrusage env).Posix.ru_time_ns;
  let t = ref 0 in
  Posix.set_time_source env (fun () -> !t);
  t := 123456;
  Alcotest.(check int) "installed time source" 123456 (Posix.getrusage env).Posix.ru_time_ns

let test_signal () =
  let env = Posix.create_env () in
  let got = ref [] in
  (* No handler: silently ignored, as the paper's null functions. *)
  Posix.raise_signal env 13;
  Posix.signal env 13 (Some (fun s -> got := s :: !got));
  Posix.raise_signal env 13;
  Posix.raise_signal env 13;
  Posix.signal env 13 None;
  Posix.raise_signal env 13;
  Alcotest.(check (list int)) "delivered while installed" [ 13; 13 ] !got;
  Alcotest.(check int) "count" 2 (Posix.signals_handled env)

let test_select () =
  let env = Posix.create_env () in
  (match Posix.select env ~read_fds:[ 99 ] ~timeout_ns:None with
  | Error Error.Badf -> ()
  | _ -> Alcotest.fail "select on a bad fd must EBADF");
  (* With a real fd: degenerate readiness. *)
  let dev = Mem_blkio.make ~bytes:(1 lsl 18) () in
  Posix.set_root env (Some (ok (Fs_glue.newfs dev)));
  let fd = ok (Posix.open_ env "/f" (Posix.o_creat lor Posix.o_rdwr)) in
  let slept = ref 0 in
  Posix.set_sleeper env (fun ns -> slept := ns);
  (match Posix.select env ~read_fds:[ fd ] ~timeout_ns:(Some 5000) with
  | Ok fds -> Alcotest.(check (list int)) "all ready" [ fd ] fds
  | Error e -> Alcotest.failf "select: %s" (Error.to_string e));
  Alcotest.(check int) "timeout honoured via the sleeper hook" 5000 !slept

(* ---- the BSD event-hash sleep/wakeup ---- *)

let test_bsd_sleep_hash () =
  let w = World.create () in
  let m = Machine.create ~name:"bsdsleep-pc" w in
  let sched = Thread.create_sched m in
  Thread.install sched;
  let q = Bsd_sleep.create () in
  let log = ref [] in
  (* Two sleepers on one channel, one on another; wakeup(chan) wakes ALL
     sleepers of that channel (BSD semantics), and only them. *)
  Thread.spawn sched ~name:"s1" (fun () ->
      Bsd_sleep.tsleep q ~channel:0xbeef;
      log := "s1" :: !log);
  Thread.spawn sched ~name:"s2" (fun () ->
      Bsd_sleep.tsleep q ~channel:0xbeef;
      log := "s2" :: !log);
  Thread.spawn sched ~name:"s3" (fun () ->
      Bsd_sleep.tsleep q ~channel:0xcafe;
      log := "s3" :: !log);
  Machine.kick m;
  World.run w;
  Alcotest.(check int) "two waiters on beef" 2 (Bsd_sleep.waiters q ~channel:0xbeef);
  ignore (Machine.at m 100 (fun () -> Bsd_sleep.wakeup q ~channel:0xbeef));
  World.run w;
  Alcotest.(check (list string)) "both beef sleepers woke, in order" [ "s1"; "s2" ]
    (List.rev !log);
  Alcotest.(check int) "cafe still waiting" 1 (Bsd_sleep.waiters q ~channel:0xcafe);
  (* A wakeup with no sleeper is LOST (BSD), unlike the latched record. *)
  Bsd_sleep.wakeup q ~channel:0xbeef;
  Alcotest.(check int) "no residue" 0 (Bsd_sleep.waiters q ~channel:0xbeef);
  ignore (Machine.at m 200 (fun () -> Bsd_sleep.wakeup q ~channel:0xcafe));
  World.run w;
  Alcotest.(check (list string)) "cafe woke last" [ "s1"; "s2"; "s3" ] (List.rev !log)

(* ---- Linux environment emulation ---- *)

let test_linux_current_emulation () =
  (* Manufactured on entry, restored on exit, nested entries stack. *)
  Alcotest.(check bool) "outside a component entry: error" true
    (try
       ignore (Linux_emu.current ());
       false
     with Invalid_argument _ -> true);
  Linux_emu.with_current (fun () ->
      let outer = Linux_emu.current () in
      Linux_emu.with_current (fun () ->
          let inner = Linux_emu.current () in
          Alcotest.(check bool) "nested entry gets a fresh proc" true
            (inner.Linux_emu.pid <> outer.Linux_emu.pid));
      let restored = Linux_emu.current () in
      Alcotest.(check int) "outer proc restored" outer.Linux_emu.pid restored.Linux_emu.pid)

let test_linux_wait_queues () =
  let w = World.create () in
  let m = Machine.create ~name:"lxwait-pc" w in
  let sched = Thread.create_sched m in
  Thread.install sched;
  let q = Linux_emu.wait_queue_head () in
  let woken = ref 0 in
  for _ = 1 to 3 do
    Thread.spawn sched (fun () ->
        Linux_emu.sleep_on q;
        incr woken)
  done;
  Machine.kick m;
  World.run w;
  Alcotest.(check int) "all asleep" 0 !woken;
  ignore (Machine.at m 10 (fun () -> Linux_emu.wake_up q));
  World.run w;
  Alcotest.(check int) "wake_up wakes every sleeper" 3 !woken

let test_jiffies () =
  let w = World.create () in
  let m = Machine.create ~name:"jiffies-pc" w in
  ignore (Machine.at m 50_000_000 (fun () -> ()));
  World.run w;
  Alcotest.(check int) "100 Hz jiffies" 5 (Linux_emu.jiffies m)

(* ---- kernel clock ---- *)

let test_kernel_clock () =
  let w = World.create () in
  let m = Machine.create ~name:"kclk-pc" w in
  let k = Kernel.create m in
  Kernel.start_clock ~hz:1000 k;
  ignore (Machine.at m 10_500_000 (fun () -> Timer_dev.stop (Kernel.timer k)));
  World.run w;
  Alcotest.(check bool) "ticked ~10 times at 1kHz over 10.5ms" true
    (Kernel.clock_ticks k >= 10 && Kernel.clock_ticks k <= 11)

let test_callout_cancel () =
  let w = World.create () in
  let m = Machine.create ~name:"callout-pc" w in
  let fired = ref false in
  Machine.run_in m (fun () ->
      let c = Kclock.callout_after ~ns:1000 (fun () -> fired := true) in
      Kclock.callout_cancel c);
  World.run w;
  Alcotest.(check bool) "cancelled callout never fires" false !fired

(* ---- sockbuf ---- *)

let test_sockbuf () =
  let sb = Sockbuf.create ~hiwat:100 in
  Alcotest.(check int) "space when empty" 100 (Sockbuf.space sb);
  Sockbuf.sbappend_bytes sb ~src:(Bytes.of_string "hello world") ~src_pos:0 ~len:11;
  Alcotest.(check int) "cc" 11 sb.Sockbuf.sb_cc;
  let dst = Bytes.create 5 in
  Sockbuf.copy_out sb ~off:6 ~len:5 ~dst ~dst_pos:0;
  Alcotest.(check string) "copy_out window" "world" (Bytes.to_string dst);
  Sockbuf.sbdrop sb 6;
  Alcotest.(check int) "cc after drop" 5 sb.Sockbuf.sb_cc;
  Sockbuf.copy_out sb ~off:0 ~len:5 ~dst ~dst_pos:0;
  Alcotest.(check string) "front advanced" "world" (Bytes.to_string dst);
  (* Range view shares cluster storage. *)
  Sockbuf.sbappend_bytes sb ~src:(Bytes.make 3000 'z') ~src_pos:0 ~len:3000;
  let m = Sockbuf.copy_range sb ~off:5 ~len:3000 in
  Alcotest.(check int) "range length" 3000 (Mbuf.m_length m);
  Sockbuf.sbdrop sb 3005;
  Alcotest.(check int) "fully drained" 0 sb.Sockbuf.sb_cc;
  Alcotest.(check bool) "chain released" true (sb.Sockbuf.sb_mb = None)

let suite =
  [ Alcotest.test_case "getrusage" `Quick test_getrusage;
    Alcotest.test_case "signal registry" `Quick test_signal;
    Alcotest.test_case "select (degenerate)" `Quick test_select;
    Alcotest.test_case "bsd event-hash sleep/wakeup" `Quick test_bsd_sleep_hash;
    Alcotest.test_case "linux current emulation" `Quick test_linux_current_emulation;
    Alcotest.test_case "linux wait queues" `Quick test_linux_wait_queues;
    Alcotest.test_case "jiffies" `Quick test_jiffies;
    Alcotest.test_case "kernel clock" `Quick test_kernel_clock;
    Alcotest.test_case "callout cancel" `Quick test_callout_cancel;
    Alcotest.test_case "sockbuf" `Quick test_sockbuf ]
