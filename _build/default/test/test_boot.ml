(* MultiBoot: info encode/decode through simulated RAM, the loader, chain
   loaders, boot-module FS, boot-time LMM population. *)

let make_machine () =
  let w = World.create () in
  Machine.create ~name:(Printf.sprintf "boot-pc-%d" (Random.int 1_000_000)) w

let test_info_roundtrip () =
  let m = make_machine () in
  let ram = Machine.ram m in
  let info =
    { Multiboot.mem_lower_kb = 640;
      mem_upper_kb = 7168;
      cmdline = "kernel --flag=1 value";
      modules =
        [ { Multiboot.mod_start = 0x200000; mod_end = 0x200800; mod_string = "initrd" };
          { Multiboot.mod_start = 0x201000; mod_end = 0x209999; mod_string = "etc/config" } ];
      mmap =
        [ { Multiboot.mm_base = 0; mm_length = 640 * 1024; mm_available = true };
          { Multiboot.mm_base = 0x100000; mm_length = 7 * 1024 * 1024; mm_available = true };
          { Multiboot.mm_base = 0xf00000; mm_length = 0x100000; mm_available = false } ] }
  in
  let finish = Multiboot.encode ram info ~at:0x9000 in
  Alcotest.(check bool) "encoder bounded" true (finish > 0x9000 && finish < 0xa000);
  let decoded = Multiboot.decode ram ~at:0x9000 in
  Alcotest.(check string) "cmdline" info.Multiboot.cmdline decoded.Multiboot.cmdline;
  Alcotest.(check int) "mem_upper" 7168 decoded.Multiboot.mem_upper_kb;
  Alcotest.(check int) "modules" 2 (List.length decoded.Multiboot.modules);
  Alcotest.(check int) "mmap" 3 (List.length decoded.Multiboot.mmap);
  Alcotest.(check bool) "module fields" true
    (let m2 = List.nth decoded.Multiboot.modules 1 in
     m2.Multiboot.mod_start = 0x201000 && m2.Multiboot.mod_string = "etc/config")

let prop_info_roundtrip =
  QCheck.Test.make ~name:"multiboot: encode/decode identity" ~count:50
    QCheck.(
      pair (string_of_size (QCheck.Gen.int_range 0 60))
        (small_list (pair small_nat (string_of_size (QCheck.Gen.int_range 1 20)))))
    (fun (cmdline, mods) ->
      QCheck.assume
        (String.for_all (fun c -> c <> '\000') cmdline
        && List.for_all (fun (_, s) -> String.for_all (fun c -> c <> '\000') s) mods);
      let m = make_machine () in
      let ram = Machine.ram m in
      let modules =
        List.mapi
          (fun i (size, name) ->
            { Multiboot.mod_start = 0x100000 + (i * 0x1000);
              mod_end = 0x100000 + (i * 0x1000) + size;
              mod_string = name })
          mods
      in
      let info =
        { Multiboot.mem_lower_kb = 640; mem_upper_kb = 1024; cmdline; modules; mmap = [] }
      in
      ignore (Multiboot.encode ram info ~at:0x8000);
      let d = Multiboot.decode ram ~at:0x8000 in
      d.Multiboot.cmdline = cmdline
      && List.length d.Multiboot.modules = List.length modules
      && List.for_all2
           (fun a b ->
             a.Multiboot.mod_start = b.Multiboot.mod_start
             && a.Multiboot.mod_end = b.Multiboot.mod_end
             && a.Multiboot.mod_string = b.Multiboot.mod_string)
           d.Multiboot.modules modules)

let test_image_validation () =
  let img = Loader.make_image ~payload:"kernel text here" in
  Alcotest.(check bool) "valid image accepted" true (Loader.validate_image img = Ok ());
  let broken = Bytes.copy img in
  Bytes.set broken 8 '\x00';
  Alcotest.(check bool) "bad checksum rejected" true
    (match Loader.validate_image broken with Error _ -> true | Ok () -> false);
  Alcotest.(check bool) "garbage rejected" true
    (match Loader.validate_image (Bytes.make 100 'x') with Error _ -> true | Ok () -> false)

let test_load_places_everything () =
  let m = make_machine () in
  let image = Loader.make_image ~payload:(String.make 5000 'K') in
  let loaded =
    Loader.load m ~image ~cmdline:"root=hd0"
      ~modules:[ "mod-a", String.make 100 'A'; "mod-b", String.make 9000 'B' ]
  in
  Alcotest.(check int) "kernel at 1MB" 0x100000 loaded.Loader.kernel_start;
  (* The info structure written to RAM decodes to what load reported. *)
  let decoded = Multiboot.decode (Machine.ram m) ~at:loaded.Loader.info_addr in
  Alcotest.(check string) "cmdline via RAM" "root=hd0" decoded.Multiboot.cmdline;
  (match decoded.Multiboot.modules with
  | [ a; b ] ->
      Alcotest.(check int) "module A size" 100 (a.Multiboot.mod_end - a.Multiboot.mod_start);
      Alcotest.(check bool) "modules page aligned" true
        (a.Multiboot.mod_start land 0xfff = 0 && b.Multiboot.mod_start land 0xfff = 0);
      (* Module bytes really are in RAM. *)
      Alcotest.(check int) "module B content" (Char.code 'B')
        (Physmem.get8 (Machine.ram m) b.Multiboot.mod_start)
  | l -> Alcotest.failf "expected 2 modules, got %d" (List.length l));
  Alcotest.(check bool) "mmap covers RAM" true (decoded.Multiboot.mmap <> [])

let test_chain_loaders () =
  let m = make_machine () in
  let image = Loader.make_image ~payload:"inner kernel" in
  List.iter
    (fun (name, wrap) ->
      let wrapped = wrap image in
      let loaded = Loader.load_wrapped m ~image:wrapped ~cmdline:"" ~modules:[] in
      Alcotest.(check int) (name ^ " loads at 1MB") 0x100000 loaded.Loader.kernel_start)
    [ "bsd", Loader.wrap_bsd; "linux", Loader.wrap_linux; "dos", Loader.wrap_dos ]

let test_bootmod_fs () =
  let m = make_machine () in
  let image = Loader.make_image ~payload:"k" in
  let loaded =
    Loader.load m ~image ~cmdline:""
      ~modules:
        [ "boot/startup.img", "STARTUP-CONTENT"; "boot/conf", "x=1"; "motd", "welcome" ]
  in
  let root = Bootmod_fs.make (Machine.ram m) loaded.Loader.info in
  let env = Posix.create_env () in
  Posix.set_root env (Some root);
  (* POSIX open/read over the boot modules, as ML/OS and Java/PC did. *)
  (match Posix.open_ env "/boot/startup.img" Posix.o_rdonly with
  | Ok fd ->
      let buf = Bytes.create 64 in
      (match Posix.read env fd buf ~pos:0 ~len:64 with
      | Ok n -> Alcotest.(check string) "module readable" "STARTUP-CONTENT"
                  (Bytes.sub_string buf 0 n)
      | Error e -> Alcotest.failf "read: %s" (Error.to_string e));
      ignore (Posix.close env fd)
  | Error e -> Alcotest.failf "open: %s" (Error.to_string e));
  (match Posix.readdir env "/boot" with
  | Ok names ->
      Alcotest.(check (list string)) "directory listing" [ "conf"; "startup.img" ]
        (List.sort compare names)
  | Error e -> Alcotest.failf "readdir: %s" (Error.to_string e));
  (* Read-only. *)
  (match Posix.unlink env "/motd" with
  | Error Error.Rofs -> ()
  | _ -> Alcotest.fail "boot module fs must be read-only");
  match Posix.stat env "/motd" with
  | Ok st -> Alcotest.(check int) "stat size" 7 st.Io_if.st_size
  | Error e -> Alcotest.failf "stat: %s" (Error.to_string e)

let test_bootmem_populate () =
  let m = make_machine () in
  let image = Loader.make_image ~payload:(String.make 4096 'K') in
  let loaded = Loader.load m ~image ~cmdline:"" ~modules:[ "m", String.make 4096 'M' ] in
  let lmm = Lmm.create () in
  let ram_bytes = Physmem.size (Machine.ram m) in
  Bootmem.populate lmm loaded ~ram_bytes;
  (* The kernel, info and module ranges must not be allocatable. *)
  let reserved_ok = ref true in
  Lmm.iter_free lmm (fun ~addr ~size ~flags:_ ->
      List.iter
        (fun (lo, hi) -> if addr < hi && lo < addr + size then reserved_ok := false)
        ((loaded.Loader.kernel_start, loaded.Loader.kernel_end)
        :: Multiboot.reserved_ranges loaded.Loader.info));
  Alcotest.(check bool) "no free overlap with kernel/modules" true !reserved_ok;
  (* But plenty of memory is available, including DMA-able. *)
  Alcotest.(check bool) "high memory available" true (Lmm.avail lmm ~flags:0 > 1024 * 1024);
  Alcotest.(check bool) "dma memory available" true
    (Lmm.avail lmm ~flags:Lmm.flag_low_16mb > 0)

let suite =
  [ Alcotest.test_case "info roundtrip" `Quick test_info_roundtrip;
    QCheck_alcotest.to_alcotest prop_info_roundtrip;
    Alcotest.test_case "image validation" `Quick test_image_validation;
    Alcotest.test_case "load places everything" `Quick test_load_places_everything;
    Alcotest.test_case "chain loaders" `Quick test_chain_loaders;
    Alcotest.test_case "boot-module fs" `Quick test_bootmod_fs;
    Alcotest.test_case "bootmem populate" `Quick test_bootmem_populate ]
