(* Smaller components: exec images, SMP interfaces, the BSD kernel-malloc
   emulation (Section 4.7.7), fdev probing, and the Linux IDE driver path
   through the blkio COM interface. *)

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "error: %s" (Error.to_string e)

(* ---- exec ---- *)

let test_exec_pack_parse () =
  let img =
    { Exec.entry = 0x401000l; load_va = 0x400000l; text = String.make 5000 'T';
      data = "DATA-SEG"; bss_size = 4096 }
  in
  let packed = Exec.pack img in
  let parsed = ok (Exec.parse packed) in
  Alcotest.(check int32) "entry" img.Exec.entry parsed.Exec.entry;
  Alcotest.(check string) "data" "DATA-SEG" parsed.Exec.data;
  Alcotest.(check int) "bss" 4096 parsed.Exec.bss_size;
  (match Exec.parse (Bytes.make 100 'x') with
  | Error Error.Inval -> ()
  | _ -> Alcotest.fail "bad magic must be rejected");
  match Exec.parse (Bytes.sub packed 0 10) with
  | Error Error.Inval -> ()
  | _ -> Alcotest.fail "truncated header must be rejected"

let test_exec_load_and_map () =
  let w = World.create () in
  let m = Machine.create ~name:"exec-pc" w in
  let ram = Machine.ram m in
  let img =
    { Exec.entry = 0x400010l; load_va = 0x400000l; text = String.make 4096 'T';
      data = String.make 100 'D'; bss_size = 500 }
  in
  let loaded = Exec.load ram img ~at:0x100000 in
  Alcotest.(check int) "loaded size" (4096 + 100 + 500) loaded.Exec.l_size;
  Alcotest.(check int) "text byte" (Char.code 'T') (Physmem.get8 ram 0x100000);
  Alcotest.(check int) "data byte" (Char.code 'D') (Physmem.get8 ram (0x100000 + 4096));
  Alcotest.(check int) "bss zeroed" 0 (Physmem.get8 ram (0x100000 + 4196));
  (* Map into a page table and check protections. *)
  let next = ref 0x200000 in
  let alloc_page () =
    let a = !next in
    next := !next + 4096;
    a
  in
  let pt = Page_table.create ~ram ~alloc_page in
  Exec.map_into pt img loaded;
  (match Page_table.access pt ~va:0x400000l ~write:true ~user:true with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "text must be read-only");
  match Page_table.access pt ~va:0x401000l ~write:true ~user:true with
  | Ok pa -> Alcotest.(check int) "data maps to loaded data" (0x100000 + 4096) pa
  | Error _ -> Alcotest.fail "data must be writable"

(* ---- smp ---- *)

let test_smp () =
  let w = World.create () in
  let m = Machine.create ~name:"smp-pc" w in
  let smp = Smp.init ~ncpus:4 m in
  Alcotest.(check int) "cpus" 4 (Smp.num_cpus smp);
  let counters = Smp.percpu smp ~init:(fun cpu -> ref (cpu * 10)) in
  Alcotest.(check int) "percpu init" 0 !(Smp.get smp counters);
  Alcotest.(check int) "percpu other" 30 !(Smp.get_for counters ~cpu:3);
  let l = Smp.spinlock ~name:"test" () in
  Smp.with_spinlock l (fun () ->
      Alcotest.(check bool) "trylock fails while held" false (Smp.spin_trylock l));
  Alcotest.(check bool) "trylock after release" true (Smp.spin_trylock l);
  Smp.spin_unlock l;
  Alcotest.(check int) "contention recorded" 1 (Smp.spin_contentions l);
  Smp.spin_lock l;
  Alcotest.(check bool) "self-deadlock detected" true
    (try
       Smp.spin_lock l;
       false
     with Invalid_argument _ -> true);
  Smp.spin_unlock l;
  let visited = ref [] in
  Smp.broadcast smp (fun cpu -> visited := cpu :: !visited);
  Alcotest.(check (list int)) "broadcast to others" [ 1; 2; 3 ] (List.rev !visited)

(* ---- the BSD kernel malloc emulation ---- *)

let make_bsd_malloc () =
  let lmm = Lmm.create () in
  Lmm.add_region lmm ~min:0 ~size:(1 lsl 22) ~flags:0 ~pri:0;
  Lmm.add_free lmm ~addr:0 ~size:(1 lsl 22);
  let client_alloc size = Lmm.alloc_aligned lmm ~size ~flags:0 ~align_bits:12 ~align_ofs:0 in
  Bsd_malloc.create ~client_alloc

let test_bsd_malloc_properties () =
  let bm = make_bsd_malloc () in
  (* Property 1: natural alignment per size class. *)
  List.iter
    (fun size ->
      let addr = Option.get (Bsd_malloc.malloc bm size) in
      let class_size = Option.get (Bsd_malloc.usable_size bm addr) in
      Alcotest.(check bool)
        (Printf.sprintf "block of %d aligned to class %d" size class_size)
        true
        (addr mod class_size = 0);
      Alcotest.(check bool) "class holds the request" true (class_size >= size))
    [ 1; 16; 17; 100; 128; 129; 1000; 2048; 4096 ];
  (* Property 2: power-of-two requests waste nothing. *)
  let a = Option.get (Bsd_malloc.malloc bm 256) in
  Alcotest.(check (option int)) "exact class for pow2" (Some 256)
    (Bsd_malloc.usable_size bm a);
  (* Property 3: free takes no size. *)
  Bsd_malloc.free bm a;
  let a' = Option.get (Bsd_malloc.malloc bm 256) in
  Alcotest.(check int) "freelist reuse" a a'

let test_bsd_malloc_table_growth () =
  (* Scattered client pages force the page table to regrow, as the paper
     warns. *)
  let pages = ref [ 0x0; 0x400000; 0x10000; 0x800000 ] in
  let client_alloc _ =
    match !pages with
    | p :: rest ->
        pages := rest;
        Some p
    | [] -> None
  in
  let bm = Bsd_malloc.create ~client_alloc in
  (* Each allocation of a distinct size class consumes a fresh page. *)
  ignore (Bsd_malloc.malloc bm 16);
  ignore (Bsd_malloc.malloc bm 64);
  ignore (Bsd_malloc.malloc bm 256);
  ignore (Bsd_malloc.malloc bm 1024);
  Alcotest.(check int) "pages taken" 4 (Bsd_malloc.pages_taken bm);
  Alcotest.(check bool) "table regrew for scattered pages" true
    (Bsd_malloc.table_regrows bm >= 2);
  (* Sizes still tracked correctly across the regrowth. *)
  let addr = Option.get (Bsd_malloc.malloc bm 1024) in
  Alcotest.(check (option int)) "size survives regrowth" (Some 1024)
    (Bsd_malloc.usable_size bm addr)

let test_bsd_malloc_free_checks () =
  let bm = make_bsd_malloc () in
  let addr = Option.get (Bsd_malloc.malloc bm 64) in
  Alcotest.(check bool) "misaligned free rejected" true
    (try
       Bsd_malloc.free bm (addr + 3);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "never-seen free rejected" true
    (try
       Bsd_malloc.free bm 0x3ff000;
       false
     with Invalid_argument _ -> true)

(* ---- fdev probing + osenv ---- *)

let test_fdev_probe_and_lookup () =
  Fdev.clear_drivers ();
  Linux_glue.reset ();
  let w = World.create () in
  let wire = Wire.create w in
  let m = Machine.create ~name:"probe-pc" w in
  Bus.clear m;
  Bus.register_hw m
    (Bus.Hw_nic
       { model = "NE2000"; nic = Nic.create ~machine:m ~wire ~mac:"\x02\x00\x00\x00\x09\x01" ~irq:9 () });
  Bus.register_hw m
    (Bus.Hw_nic
       { model = "unsupported-chip";
         nic = Nic.create ~machine:m ~wire ~mac:"\x02\x00\x00\x00\x09\x02" ~irq:10 () });
  let disk = Disk.create ~machine:m ~sectors:4096 ~irq:14 () in
  Bus.register_hw m (Bus.Hw_disk { model = "WDC-AC2850"; disk });
  Linux_glue.init_ethernet ();
  Linux_glue.init_ide ();
  Alcotest.(check int) "two driver sets registered" 2
    (List.length (Fdev.registered_drivers ()));
  let osenv = Osenv.create m in
  let found = Fdev.probe osenv in
  Alcotest.(check int) "probe found eth + disk, skipped unknown chip" 2 found;
  Alcotest.(check int) "one etherdev" 1 (List.length (Fdev.lookup osenv Io_if.etherdev_iid));
  Alcotest.(check int) "one blkio" 1 (List.length (Fdev.lookup osenv Io_if.blkio_iid));
  Fdev.clear_drivers ()

let test_osenv_services () =
  let w = World.create () in
  let m = Machine.create ~name:"osenv-pc" w in
  let osenv = Osenv.create m in
  (* Default memory allocation honours DMA constraints. *)
  (match Osenv.mem_alloc osenv ~size:4096 ~flags:Lmm.flag_low_16mb ~align_bits:12 with
  | Some addr ->
      Alcotest.(check bool) "DMA range" true (addr + 4096 <= Physmem.dma_limit);
      Alcotest.(check int) "aligned" 0 (addr land 0xfff);
      Osenv.mem_free osenv ~addr ~size:4096
  | None -> Alcotest.fail "osenv alloc failed");
  (* IRQ request conflicts are reported. *)
  (match Osenv.irq_request osenv ~irq:5 ~handler:(fun () -> ()) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "first irq_request");
  (match Osenv.irq_request osenv ~irq:5 ~handler:(fun () -> ()) with
  | Error Error.Busy -> ()
  | _ -> Alcotest.fail "conflicting irq_request must fail");
  Osenv.irq_free osenv ~irq:5;
  (match Osenv.irq_request osenv ~irq:5 ~handler:(fun () -> ()) with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "re-request after free");
  Osenv.log osenv "driver message";
  Alcotest.(check string) "log captured" "driver message\n" (Osenv.log_output osenv)

(* ---- Linux IDE driver through the COM blkio ---- *)

let test_ide_blkio_path () =
  Fdev.clear_drivers ();
  Linux_glue.reset ();
  let w = World.create () in
  let m = Machine.create ~name:"ide-pc" w in
  let sched = Thread.create_sched m in
  Thread.install sched;
  Bus.clear m;
  let disk = Disk.create ~machine:m ~sectors:8192 ~irq:14 () in
  Bus.register_hw m (Bus.Hw_disk { model = "QUANTUM-LPS540"; disk });
  Linux_glue.init_ide ();
  let osenv = Osenv.create m in
  ignore (Fdev.probe osenv);
  match Fdev.lookup osenv Io_if.blkio_iid with
  | [ bio ] ->
      let finished = ref false in
      Thread.spawn sched ~name:"fs-user" (fun () ->
          (* Unaligned write exercises read-modify-write. *)
          let msg = Bytes.of_string "written-through-the-stack" in
          let n = ok (bio.Io_if.bio_write ~buf:msg ~pos:0 ~offset:1000 ~amount:(Bytes.length msg)) in
          Alcotest.(check int) "write all" (Bytes.length msg) n;
          let back = Bytes.create (Bytes.length msg) in
          let n = ok (bio.Io_if.bio_read ~buf:back ~pos:0 ~offset:1000 ~amount:(Bytes.length back)) in
          Alcotest.(check int) "read all" (Bytes.length back) n;
          Alcotest.(check string) "roundtrip through driver + hardware model"
            "written-through-the-stack" (Bytes.to_string back);
          finished := true);
      Machine.kick m;
      World.run w ~until:(fun () -> !finished);
      Alcotest.(check bool) "completed" true !finished;
      (* The data really reached the simulated platters. *)
      let sector = Disk.read_raw disk ~start:(1000 / 512) ~count:2 in
      Alcotest.(check bool) "on the platters" true
        (let s = Bytes.to_string sector in
         let rec find i =
           i + 7 <= String.length s && (String.sub s i 7 = "written" || find (i + 1))
         in
         find 0);
      Fdev.clear_drivers ()
  | l -> Alcotest.failf "expected 1 blkio device, found %d" (List.length l)

let suite =
  [ Alcotest.test_case "exec pack/parse" `Quick test_exec_pack_parse;
    Alcotest.test_case "exec load and map" `Quick test_exec_load_and_map;
    Alcotest.test_case "smp primitives" `Quick test_smp;
    Alcotest.test_case "bsd malloc: three properties" `Quick test_bsd_malloc_properties;
    Alcotest.test_case "bsd malloc: table growth" `Quick test_bsd_malloc_table_growth;
    Alcotest.test_case "bsd malloc: free checks" `Quick test_bsd_malloc_free_checks;
    Alcotest.test_case "fdev probe and lookup" `Quick test_fdev_probe_and_lookup;
    Alcotest.test_case "osenv services" `Quick test_osenv_services;
    Alcotest.test_case "linux IDE via blkio" `Quick test_ide_blkio_path ]
