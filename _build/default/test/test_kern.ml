(* Kernel support: cooperative threads, sleep records, component locks,
   page tables, trap dispatch + debug registers, the GDB stub. *)

let with_machine f =
  let w = World.create () in
  let m = Machine.create ~name:(Printf.sprintf "kern-pc-%d" (Random.int 1_000_000)) w in
  let k = Kernel.create m in
  f w m k

(* ---- threads ---- *)

let test_spawn_and_run () =
  with_machine (fun w _ k ->
      let log = ref [] in
      Kernel.spawn k ~name:"t1" (fun () -> log := 1 :: !log);
      Kernel.spawn k ~name:"t2" (fun () -> log := 2 :: !log);
      World.run w;
      Alcotest.(check (list int)) "both ran, spawn order" [ 1; 2 ] (List.rev !log))

let test_yield_interleaves () =
  with_machine (fun w _ k ->
      let log = Buffer.create 8 in
      Kernel.spawn k (fun () ->
          Buffer.add_char log 'a';
          Thread.yield ();
          Buffer.add_char log 'c');
      Kernel.spawn k (fun () ->
          Buffer.add_char log 'b';
          Thread.yield ();
          Buffer.add_char log 'd');
      World.run w;
      Alcotest.(check string) "round robin at yields" "abcd" (Buffer.contents log))

let test_thread_exception_isolated () =
  with_machine (fun w _ k ->
      let survived = ref false in
      Kernel.spawn k ~name:"dying" (fun () -> failwith "thread bug");
      Kernel.spawn k (fun () -> survived := true);
      World.run w;
      Alcotest.(check bool) "other thread unaffected" true !survived;
      match Thread.failures (Kernel.sched k) with
      | [ ("dying", Failure msg) ] -> Alcotest.(check string) "message" "thread bug" msg
      | l -> Alcotest.failf "expected 1 recorded failure, got %d" (List.length l))

let test_sleep_wakeup_from_interrupt () =
  with_machine (fun w m k ->
      let sr = Sleep_record.create ~name:"io-done" () in
      let woke_at = ref 0 in
      Kernel.spawn k (fun () ->
          Sleep_record.sleep sr;
          woke_at := Machine.now m);
      ignore (Machine.at m 5000 (fun () -> Sleep_record.wakeup sr));
      World.run w;
      Alcotest.(check bool) "woke after the interrupt" true (!woke_at >= 5000))

let test_sleep_latched_wakeup () =
  with_machine (fun w _ k ->
      let sr = Sleep_record.create () in
      (* Wakeup first, sleep second: must not block. *)
      Sleep_record.wakeup sr;
      let passed = ref false in
      Kernel.spawn k (fun () ->
          Sleep_record.sleep sr;
          passed := true);
      World.run w;
      Alcotest.(check bool) "latched wakeup consumed" true !passed)

let test_sleep_single_waiter () =
  with_machine (fun w _ k ->
      let sr = Sleep_record.create ~name:"one" () in
      let second_failed = ref false in
      Kernel.spawn k (fun () -> Sleep_record.sleep sr);
      Kernel.spawn k (fun () ->
          try Sleep_record.sleep sr with Invalid_argument _ -> second_failed := true);
      World.run w;
      Alcotest.(check bool) "second waiter rejected" true !second_failed;
      Sleep_record.wakeup sr;
      World.run w)

let test_kclock_sleep () =
  with_machine (fun w m k ->
      let t1 = ref 0 in
      Kernel.spawn k (fun () ->
          Kclock.sleep_ns 123_456;
          t1 := Machine.now m);
      World.run w;
      Alcotest.(check bool) "slept the requested time" true (!t1 >= 123_456))

let test_component_lock () =
  with_machine (fun w _ k ->
      let lock = Component_lock.create ~name:"fs" () in
      let order = Buffer.create 8 in
      Kernel.spawn k ~name:"A" (fun () ->
          Component_lock.with_lock lock (fun () ->
              Buffer.add_char order 'A';
              Thread.yield ();
              (* Still holding: B must not have entered. *)
              Buffer.add_char order 'a'));
      Kernel.spawn k ~name:"B" (fun () ->
          Component_lock.with_lock lock (fun () -> Buffer.add_char order 'B'));
      World.run w;
      Alcotest.(check string) "mutual exclusion, FIFO handoff" "AaB" (Buffer.contents order);
      Alcotest.(check int) "one contention" 1 (Component_lock.contentions lock))

let test_lock_dropped_across_blocking () =
  with_machine (fun w _ k ->
      let lock = Component_lock.create () in
      let sr = Sleep_record.create () in
      let order = Buffer.create 8 in
      Kernel.spawn k ~name:"inside" (fun () ->
          Component_lock.with_lock lock (fun () ->
              Buffer.add_char order '1';
              (* Blocking call back to the client: release around it. *)
              Component_lock.with_lock_dropped lock (fun () -> Sleep_record.sleep sr);
              Buffer.add_char order '3'));
      Kernel.spawn k ~name:"other" (fun () ->
          Component_lock.with_lock lock (fun () -> Buffer.add_char order '2');
          Sleep_record.wakeup sr);
      World.run w;
      Alcotest.(check string) "lock free during the blocked call" "123"
        (Buffer.contents order))

(* ---- page tables ---- *)

let make_pt m =
  let lmm = Lmm.create () in
  let ram = Machine.ram m in
  Lmm.add_region lmm ~min:0 ~size:(Physmem.size ram) ~flags:0 ~pri:0;
  Lmm.add_free lmm ~addr:0x10000 ~size:(Physmem.size ram - 0x10000);
  let alloc_page () =
    let a = Option.get (Lmm.alloc_page lmm ~flags:0) in
    Physmem.fill ram ~addr:a ~len:4096 0;
    a
  in
  Page_table.create ~ram ~alloc_page

let test_page_table_map_translate () =
  with_machine (fun _ m _ ->
      let pt = make_pt m in
      Page_table.map pt ~va:0x400000l ~pa:0x20000
        ~prot:{ Page_table.writable = true; user = false };
      (match Page_table.translate pt 0x400123l with
      | Some { Page_table.pa; prot } ->
          Alcotest.(check int) "pa with page offset" 0x20123 pa;
          Alcotest.(check bool) "writable" true prot.Page_table.writable
      | None -> Alcotest.fail "translate failed");
      Alcotest.(check (option reject)) "unmapped va" None
        (Option.map ignore (Page_table.translate pt 0x800000l)))

let test_page_table_access_codes () =
  with_machine (fun _ m _ ->
      let pt = make_pt m in
      Page_table.map pt ~va:0x1000l ~pa:0x30000
        ~prot:{ Page_table.writable = false; user = true };
      (match Page_table.access pt ~va:0x1000l ~write:false ~user:true with
      | Ok pa -> Alcotest.(check int) "read ok" 0x30000 pa
      | Error _ -> Alcotest.fail "read should succeed");
      (match Page_table.access pt ~va:0x1000l ~write:true ~user:true with
      | Error code ->
          Alcotest.(check int32) "P|W|U fault code" 0b111l code
      | Ok _ -> Alcotest.fail "write to RO page must fault");
      match Page_table.access pt ~va:0x7000l ~write:false ~user:false with
      | Error code -> Alcotest.(check int32) "not-present code" 0b000l code
      | Ok _ -> Alcotest.fail "unmapped access must fault")

let test_page_table_unmap_and_count () =
  with_machine (fun _ m _ ->
      let pt = make_pt m in
      Page_table.map_range pt ~va:0x100000l ~pa:0x40000 ~len:(16 * 4096)
        ~prot:{ Page_table.writable = true; user = false };
      Alcotest.(check int) "16 pages mapped" 16 (Page_table.mapped_pages pt);
      Page_table.unmap pt ~va:0x100000l;
      Alcotest.(check int) "one unmapped" 15 (Page_table.mapped_pages pt);
      Alcotest.(check bool) "translation gone" true
        (Page_table.translate pt 0x100000l = None))

(* ---- traps ---- *)

let test_trap_override_and_fallback () =
  with_machine (fun _ m k ->
      Machine.run_in m (fun () ->
          let traps = Kernel.traps k in
          (* No handler: panic. *)
          let f1 = Trap.make_frame ~eip:0x1000l Trap.T_gpf in
          Alcotest.(check bool) "default panics" true (Trap.deliver traps f1 = `Panic);
          Alcotest.(check int) "logged" 1 (List.length (Trap.panics traps));
          (* Install a handler that resumes. *)
          Trap.set_handler traps Trap.T_gpf (fun _ -> `Handled);
          Alcotest.(check bool) "handled" true (Trap.deliver traps f1 = `Handled);
          (* Handler can decline and fall back to the default. *)
          Trap.set_handler traps Trap.T_gpf (fun _ -> `Unhandled);
          Alcotest.(check bool) "fallback panics" true (Trap.deliver traps f1 = `Panic)))

let test_debug_registers () =
  with_machine (fun _ m k ->
      Machine.run_in m (fun () ->
          let traps = Kernel.traps k in
          let caught = ref None in
          Trap.set_handler traps Trap.T_debug (fun f ->
              caught := Some f.Trap.cr2;
              `Handled);
          Trap.set_breakpoint traps ~slot:0 ~addr:0l ~len:4096;
          (* The null-pointer-catch trick of Section 6.2.4. *)
          (match Trap.check_access traps 0x10l with
          | `Trapped `Handled -> ()
          | _ -> Alcotest.fail "breakpoint should fire and be handled");
          Alcotest.(check (option int32)) "faulting address seen" (Some 0x10l) !caught;
          Alcotest.(check bool) "outside range is clean" true
            (Trap.check_access traps 0x2000l = `Ok);
          Trap.clear_breakpoint traps ~slot:0;
          Alcotest.(check bool) "cleared" true (Trap.check_access traps 0x10l = `Ok)))

(* ---- GDB stub ---- *)

let contains hay needle =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_gdb_protocol () =
  let sent = Buffer.create 256 in
  let ram = Physmem.create ~bytes:65536 in
  let stub = Gdb_stub.create ~ram ~send:(Buffer.add_string sent) in
  let frame = Trap.make_frame ~eip:0x1234l Trap.T_breakpoint in
  frame.Trap.eax <- 0xdeadbeefl;
  (* Target stops: stop reply. *)
  Gdb_stub.enter stub frame ~signal:5;
  Alcotest.(check string) "stop reply" (Gdb_proto.frame "S05") (Buffer.contents sent);
  Buffer.clear sent;
  (* Read registers: eax must appear first, little-endian. *)
  let r = Gdb_stub.feed stub (Gdb_proto.frame "g") in
  Alcotest.(check bool) "still stopped" true (r = `Stopped);
  let reply = Buffer.contents sent in
  Alcotest.(check bool) "acked" true (String.length reply > 1 && reply.[0] = '+');
  Alcotest.(check string) "eax little-endian hex" "efbeadde"
    (String.sub reply 2 8);
  Buffer.clear sent;
  (* Write and read memory. *)
  let _ = Gdb_stub.feed stub (Gdb_proto.frame "M100,4:61626364") in
  Buffer.clear sent;
  let _ = Gdb_stub.feed stub (Gdb_proto.frame "m100,4") in
  Alcotest.(check bool) "memory readback" true
    (contains (Buffer.contents sent) "61626364");
  Buffer.clear sent;
  (* Breakpoints. *)
  let _ = Gdb_stub.feed stub (Gdb_proto.frame "Z0,2000,1") in
  Alcotest.(check (list int32)) "bp set" [ 0x2000l ] (Gdb_stub.breakpoints stub);
  let _ = Gdb_stub.feed stub (Gdb_proto.frame "z0,2000,1") in
  Alcotest.(check (list int32)) "bp cleared" [] (Gdb_stub.breakpoints stub);
  (* Continue. *)
  (match Gdb_stub.feed stub (Gdb_proto.frame "c") with
  | `Resume `Continue -> ()
  | _ -> Alcotest.fail "continue not recognised");
  (* Bad checksum gets a NAK. *)
  Buffer.clear sent;
  let _ = Gdb_stub.feed stub "$g#00" in
  Alcotest.(check string) "nak on bad checksum" "-" (Buffer.contents sent)

let test_gdb_register_write () =
  let sent = Buffer.create 256 in
  let ram = Physmem.create ~bytes:4096 in
  let stub = Gdb_stub.create ~ram ~send:(Buffer.add_string sent) in
  let frame = Trap.make_frame Trap.T_breakpoint in
  Gdb_stub.enter stub frame ~signal:5;
  (* Set all 10 general registers to 1..10 (little-endian hex), segments 0. *)
  let payload =
    "G"
    ^ String.concat ""
        (List.init 10 (fun i -> Gdb_proto.hex32_le (Int32.of_int (i + 1))))
    ^ String.concat "" (List.init 6 (fun _ -> Gdb_proto.hex32_le 0l))
  in
  let _ = Gdb_stub.feed stub (Gdb_proto.frame payload) in
  Alcotest.(check int32) "eax written" 1l (Gdb_stub.regs stub).Trap.eax;
  Alcotest.(check int32) "eip written" 9l (Gdb_stub.regs stub).Trap.eip

let test_gdb_proto_roundtrip () =
  let p = Gdb_proto.create_parser () in
  let packet = Gdb_proto.frame "m100,20" in
  let results = List.filter_map (fun c -> match Gdb_proto.feed p c with
      | `Packet s -> Some s
      | _ -> None)
    (List.init (String.length packet) (String.get packet))
  in
  Alcotest.(check (list string)) "deframed" [ "m100,20" ] results;
  Alcotest.(check string) "hex roundtrip" "hello"
    (Gdb_proto.string_of_hex (Gdb_proto.hex_of_string "hello"))

let suite =
  [ Alcotest.test_case "spawn and run" `Quick test_spawn_and_run;
    Alcotest.test_case "yield interleaves" `Quick test_yield_interleaves;
    Alcotest.test_case "thread exception isolated" `Quick test_thread_exception_isolated;
    Alcotest.test_case "sleep/wakeup from interrupt" `Quick test_sleep_wakeup_from_interrupt;
    Alcotest.test_case "latched wakeup" `Quick test_sleep_latched_wakeup;
    Alcotest.test_case "single waiter enforced" `Quick test_sleep_single_waiter;
    Alcotest.test_case "kclock sleep" `Quick test_kclock_sleep;
    Alcotest.test_case "component lock" `Quick test_component_lock;
    Alcotest.test_case "lock dropped across blocking" `Quick
      test_lock_dropped_across_blocking;
    Alcotest.test_case "page table map/translate" `Quick test_page_table_map_translate;
    Alcotest.test_case "page table access codes" `Quick test_page_table_access_codes;
    Alcotest.test_case "page table unmap/count" `Quick test_page_table_unmap_and_count;
    Alcotest.test_case "trap override/fallback" `Quick test_trap_override_and_fallback;
    Alcotest.test_case "debug registers" `Quick test_debug_registers;
    Alcotest.test_case "gdb protocol" `Quick test_gdb_protocol;
    Alcotest.test_case "gdb register write" `Quick test_gdb_register_write;
    Alcotest.test_case "gdb proto roundtrip" `Quick test_gdb_proto_roundtrip ]
