(* Memory allocation debugging: guard zones, double free, wild free,
   leak reports — over simulated RAM + LMM. *)

let make_md () =
  let ram = Physmem.create ~bytes:(1 lsl 20) in
  let lmm = Lmm.create () in
  Lmm.add_region lmm ~min:0 ~size:(1 lsl 20) ~flags:0 ~pri:0;
  Lmm.add_free lmm ~addr:0 ~size:(1 lsl 20);
  let md =
    Memdebug.create ~ram
      ~alloc:(fun size -> Lmm.alloc lmm ~size ~flags:0)
      ~free:(fun ~addr ~size -> Lmm.free lmm ~addr ~size)
  in
  ram, lmm, md

let test_alloc_free_roundtrip () =
  let _, lmm, md = make_md () in
  let before = Lmm.avail lmm ~flags:0 in
  let addr = Option.get (Memdebug.alloc md ~size:100 ~tag:"t") in
  Alcotest.(check (option int)) "size tracked" (Some 100) (Memdebug.size_of md addr);
  Memdebug.free md addr;
  Alcotest.(check int) "memory fully returned" before (Lmm.avail lmm ~flags:0);
  Alcotest.(check int) "no live blocks" 0 (List.length (Memdebug.live md))

let test_poison () =
  let ram, _, md = make_md () in
  let addr = Option.get (Memdebug.alloc md ~size:16 ~tag:"p") in
  Alcotest.(check int) "body poisoned" 0xa5 (Physmem.get8 ram addr)

let test_overrun_detected () =
  let ram, _, md = make_md () in
  let addr = Option.get (Memdebug.alloc md ~size:32 ~tag:"buf") in
  (* Scribble one byte past the end. *)
  Physmem.set8 ram (addr + 32) 0x00;
  (match Memdebug.check md with
  | [ Memdebug.Overrun { addr = a; tag } ] ->
      Alcotest.(check int) "right block" addr a;
      Alcotest.(check string) "right tag" "buf" tag
  | other -> Alcotest.failf "expected one overrun, got %d faults" (List.length other));
  Alcotest.(check bool) "free raises on corruption" true
    (try
       Memdebug.free md addr;
       false
     with Memdebug.Fault (Memdebug.Overrun _) -> true)

let test_underrun_detected () =
  let ram, _, md = make_md () in
  let addr = Option.get (Memdebug.alloc md ~size:32 ~tag:"u") in
  Physmem.set8 ram (addr - 1) 0x00;
  match Memdebug.check md with
  | [ Memdebug.Underrun _ ] -> ()
  | faults -> Alcotest.failf "expected underrun, got %d faults" (List.length faults)

let test_double_free () =
  let _, _, md = make_md () in
  let addr = Option.get (Memdebug.alloc md ~size:64 ~tag:"d") in
  Memdebug.free md addr;
  Alcotest.(check bool) "double free" true
    (try
       Memdebug.free md addr;
       false
     with Memdebug.Fault (Memdebug.Double_free _) -> true)

let test_wild_free () =
  let _, _, md = make_md () in
  Alcotest.(check bool) "wild free" true
    (try
       Memdebug.free md 0x8000;
       false
     with Memdebug.Fault (Memdebug.Wild_free _) -> true)

let test_leak_report () =
  let _, _, md = make_md () in
  let a = Option.get (Memdebug.alloc md ~size:10 ~tag:"first") in
  let _b = Option.get (Memdebug.alloc md ~size:20 ~tag:"second") in
  Memdebug.free md a;
  (match Memdebug.live md with
  | [ (_, 20, "second") ] -> ()
  | l -> Alcotest.failf "unexpected leak report (%d entries)" (List.length l));
  Alcotest.(check int) "live bytes" 20 (Memdebug.live_bytes md)

let test_malloc_hooks () =
  let tracker = Memdebug.install_malloc_hooks () in
  let b = Malloc.malloc 40 in
  Alcotest.(check int) "tracked" 1 (Memdebug.malloc_live_blocks tracker);
  Malloc.free b;
  Alcotest.(check int) "untracked" 0 (Memdebug.malloc_live_blocks tracker);
  Alcotest.(check bool) "double free raises" true
    (try
       Malloc.free b;
       false
     with Memdebug.Fault _ -> true);
  Memdebug.remove_malloc_hooks tracker

(* Random alloc/free sequences never corrupt each other's guards. *)
let prop_guards_hold =
  QCheck.Test.make ~name:"memdebug: disjoint blocks keep guards intact" ~count:50
    QCheck.(list (int_range 1 500))
    (fun sizes ->
      let ram, _, md = make_md () in
      let blocks =
        List.filter_map (fun size -> Memdebug.alloc md ~size ~tag:"q") sizes
      in
      (* Write every byte of every block. *)
      List.iteri
        (fun i addr ->
          let size = Option.get (Memdebug.size_of md addr) in
          Physmem.fill ram ~addr ~len:size (i land 0xff))
        blocks;
      Memdebug.check md = []
      && List.for_all
           (fun addr ->
             Memdebug.free md addr;
             true)
           blocks)

let suite =
  [ Alcotest.test_case "alloc/free roundtrip" `Quick test_alloc_free_roundtrip;
    Alcotest.test_case "poison fill" `Quick test_poison;
    Alcotest.test_case "overrun detected" `Quick test_overrun_detected;
    Alcotest.test_case "underrun detected" `Quick test_underrun_detected;
    Alcotest.test_case "double free" `Quick test_double_free;
    Alcotest.test_case "wild free" `Quick test_wild_free;
    Alcotest.test_case "leak report" `Quick test_leak_report;
    Alcotest.test_case "malloc hook layer" `Quick test_malloc_hooks;
    QCheck_alcotest.to_alcotest prop_guards_hold ]
