test/test_misc.ml: Alcotest Bsd_malloc Bus Bytes Char Disk Error Exec Fdev Io_if Linux_glue List Lmm Machine Nic Option Osenv Page_table Physmem Printf Smp String Thread Wire World
