test/test_net.ml: Alcotest Bsd_socket Buffer Bytes Char Clientos Digest Error Fdev Io_if Kclock Linux_inet Oskit Posix
