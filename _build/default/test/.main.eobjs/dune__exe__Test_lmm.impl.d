test/test_lmm.ml: Alcotest Bootmem List Lmm Option Physmem Printf QCheck QCheck_alcotest
