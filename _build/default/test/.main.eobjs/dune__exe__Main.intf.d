test/main.mli:
