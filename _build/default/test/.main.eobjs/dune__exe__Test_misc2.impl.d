test/test_misc2.ml: Alcotest Bsd_sleep Bytes Error Fs_glue Kclock Kernel Linux_emu List Machine Mbuf Mem_blkio Posix Sockbuf Thread Timer_dev World
