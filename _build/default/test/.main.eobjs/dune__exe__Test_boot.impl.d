test/test_boot.ml: Alcotest Bootmem Bootmod_fs Bytes Char Error Io_if List Lmm Loader Machine Multiboot Physmem Posix Printf QCheck QCheck_alcotest Random String World
