test/test_amm.ml: Alcotest Amm Array List Option QCheck QCheck_alcotest
