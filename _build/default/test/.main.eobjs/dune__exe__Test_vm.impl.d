test/test_vm.ml: Alcotest Array Buffer Bytes List Machine Printf QCheck QCheck_alcotest String Trap Vm World
