test/test_com.ml: Alcotest Bytes Com Error Guid Iid Io_if Lazy List Registry
