test/test_fs.ml: Alcotest Buf Buffer Bytes Char Digest Diskpart Error Ffs Fs_glue Fsread Hashtbl Io_if List Mem_blkio Posix QCheck QCheck_alcotest String
