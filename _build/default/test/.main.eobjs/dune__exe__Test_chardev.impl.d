test/test_chardev.ml: Alcotest Bus Bytes Disk Error Fdev Freebsd_char_drv Freebsd_dev_glue Io_if Linux_glue List Machine Nic Osenv Posix Printf Queue Random Serial String Thread Wire World
