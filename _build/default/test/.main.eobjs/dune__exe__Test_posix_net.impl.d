test/test_posix_net.ml: Alcotest Bytes Clientos Error Fdev Io_if Kclock Machine Oskit Posix String
