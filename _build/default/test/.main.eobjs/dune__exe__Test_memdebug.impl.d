test/test_memdebug.ml: Alcotest List Lmm Malloc Memdebug Option Physmem QCheck QCheck_alcotest
