test/test_libc.ml: Alcotest Buffer Bytes Malloc Minctype Ministdio Minstring Printf QCheck QCheck_alcotest String
