test/test_kern.ml: Alcotest Buffer Component_lock Gdb_proto Gdb_stub Int32 Kclock Kernel List Lmm Machine Option Page_table Physmem Printf Random Sleep_record String Thread Trap World
