test/test_tcp_behavior.ml: Alcotest Bsd_socket Buffer Bytes Char Clientos Digest Error Kclock Linux_inet List Machine Native_if Nic Oskit Printf Sleep_record Tcp Thread Wire World
