test/test_fatfs.ml: Alcotest Buffer Bytes Char Digest Diskpart Error Fat_glue Fs_glue Hashtbl Io_if Linux_fatfs List Mem_blkio Option Posix Printf QCheck QCheck_alcotest String
