test/test_machine.ml: Alcotest Buffer Bytes Char Cost Disk Error List Machine Nic Physmem Serial Timer_dev Wire World
