(* Deeper paper-specific behaviours: hard links, TCP simultaneous open,
   the medium-grained component concurrency of Section 4.7.4, and extra
   property tests (GDB framing, page tables vs a model). *)

let ip = Oskit.ip_of_string
let mask = ip "255.255.255.0"

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "error: %s" (Error.to_string e)

(* ---- hard links ---- *)

let test_hard_links () =
  let dev = Mem_blkio.make ~bytes:(1 lsl 21) () in
  let fs, root = ok (Fs_glue.newfs_fs dev) in
  let env = Posix.create_env () in
  Posix.set_root env (Some root);
  let fd = ok (Posix.open_ env "/orig" (Posix.o_creat lor Posix.o_rdwr)) in
  ignore (ok (Posix.write env fd (Bytes.of_string "shared bytes") ~pos:0 ~len:12));
  ok (Posix.close env fd);
  ok (Posix.mkdir env "/d");
  let dir_of path =
    match ok (Posix.lookup env path) with
    | Io_if.Node_dir d -> d
    | Io_if.Node_file _ -> Alcotest.fail "not a dir"
  in
  ok (Fs_glue.link fs ~from_dir:root ~from_name:"orig" ~to_dir:(dir_of "/d") ~to_name:"alias");
  (* Same inode, nlink 2. *)
  let st1 = ok (Posix.stat env "/orig") and st2 = ok (Posix.stat env "/d/alias") in
  Alcotest.(check int) "same inode" st1.Io_if.st_ino st2.Io_if.st_ino;
  Alcotest.(check int) "nlink" 2 st1.Io_if.st_nlink;
  (* Writes through one name are visible through the other. *)
  let fd = ok (Posix.open_ env "/d/alias" Posix.o_rdwr) in
  ignore (ok (Posix.write env fd (Bytes.of_string "SHARED") ~pos:0 ~len:6));
  ok (Posix.close env fd);
  let buf = Bytes.create 12 in
  let fd = ok (Posix.open_ env "/orig" Posix.o_rdonly) in
  ignore (ok (Posix.read env fd buf ~pos:0 ~len:12));
  Alcotest.(check string) "visible via the other name" "SHARED bytes" (Bytes.to_string buf);
  (* Unlinking one name keeps the data; unlinking the last frees it. *)
  ok (Posix.unlink env "/orig");
  Alcotest.(check int) "nlink drops" 1 (ok (Posix.stat env "/d/alias")).Io_if.st_nlink;
  let free_before = Ffs.free_blocks fs in
  ok (Posix.unlink env "/d/alias");
  Alcotest.(check bool) "blocks freed at last unlink" true (Ffs.free_blocks fs > free_before);
  (* Linking a directory is forbidden. *)
  match Fs_glue.link fs ~from_dir:root ~from_name:"d" ~to_dir:root ~to_name:"d2" with
  | Error Error.Isdir -> ()
  | _ -> Alcotest.fail "hard-linking a directory must EISDIR"

(* ---- TCP simultaneous open ---- *)

let test_simultaneous_open () =
  let w = World.create () in
  let wire = Wire.create w in
  let mk name mac ipaddr =
    let machine = Machine.create ~name w in
    let sched = Thread.create_sched machine in
    Thread.install sched;
    let nic = Nic.create ~machine ~wire ~mac ~irq:9 () in
    let stack = Bsd_socket.create_stack machine ~hwaddr:mac ~name in
    Native_if.attach stack nic;
    Bsd_socket.ifconfig stack ~addr:(ip ipaddr) ~mask;
    machine, sched, stack
  in
  let ma, ka, sa = mk "simo-a" "\x02\x00\x00\x00\x02\x0a" "10.3.0.1" in
  let mb, kb, sb = mk "simo-b" "\x02\x00\x00\x00\x02\x0b" "10.3.0.2" in
  (* Both sides bind fixed ports and actively connect to each other at the
     same virtual instant. *)
  let ra = ref None and rb = ref None in
  Thread.spawn ka (fun () ->
      let s = Bsd_socket.tcp_socket sa in
      ok (Bsd_socket.so_bind s ~port:7000);
      ra := Some (Bsd_socket.so_connect s ~dst:(ip "10.3.0.2") ~dport:7001));
  Thread.spawn kb (fun () ->
      let s = Bsd_socket.tcp_socket sb in
      ok (Bsd_socket.so_bind s ~port:7001);
      rb := Some (Bsd_socket.so_connect s ~dst:(ip "10.3.0.1") ~dport:7000));
  Machine.kick ma;
  Machine.kick mb;
  World.set_fuel w 2_000_000;
  (try World.run w ~until:(fun () -> !ra <> None && !rb <> None)
   with World.Out_of_fuel -> ());
  Alcotest.(check bool) "a connected" true (match !ra with Some (Ok ()) -> true | _ -> false);
  Alcotest.(check bool) "b connected" true (match !rb with Some (Ok ()) -> true | _ -> false)

(* ---- Section 4.7.4: medium-grained concurrency ----
   Separate component locks around the file system and the network let
   them proceed concurrently on one machine: while the FS thread is blocked
   inside the disk driver (its component lock dropped around the blocking
   call), the network thread must be able to run. *)

let test_medium_grained_concurrency () =
  Fdev.clear_drivers ();
  Linux_glue.reset ();
  let w = World.create () in
  let m = Machine.create ~name:"conc-pc" w in
  let sched = Thread.create_sched m in
  Thread.install sched;
  Bus.clear m;
  let disk = Disk.create ~machine:m ~sectors:8192 ~irq:14 () in
  Bus.register_hw m (Bus.Hw_disk { model = "WDC-AC2850"; disk });
  Linux_glue.init_ide ();
  let osenv = Osenv.create m in
  ignore (Fdev.probe osenv);
  let bio = List.hd (Fdev.lookup osenv Io_if.blkio_iid) in
  let fs_lock = Component_lock.create ~name:"fs" () in
  let net_lock = Component_lock.create ~name:"net" () in
  let log = Buffer.create 16 in
  let fs_done = ref false and net_done = ref false in
  Thread.spawn sched ~name:"fs-user" (fun () ->
      Component_lock.with_lock fs_lock (fun () ->
          Buffer.add_char log 'F';
          (* The blocking disk I/O releases the machine for ~ms of virtual
             time; the component lock protocol drops the lock around it. *)
          Component_lock.with_lock_dropped fs_lock (fun () ->
              let b = Bytes.make 4096 'f' in
              ignore (ok (bio.Io_if.bio_write ~buf:b ~pos:0 ~offset:0 ~amount:4096)));
          Buffer.add_char log 'f');
      fs_done := true);
  Thread.spawn sched ~name:"net-user" (fun () ->
      (* Runs entirely during the FS thread's disk wait. *)
      Kclock.sleep_ns 100_000;
      Component_lock.with_lock net_lock (fun () -> Buffer.add_char log 'N');
      net_done := true);
  Machine.kick m;
  World.run w ~until:(fun () -> !fs_done && !net_done);
  (* The network work interleaved INSIDE the FS critical section. *)
  Alcotest.(check string) "net ran during the FS component's blocking I/O" "FNf"
    (Buffer.contents log);
  Alcotest.(check int) "no lock contention (separate locks)" 0
    (Component_lock.contentions fs_lock + Component_lock.contentions net_lock)

(* ---- extra property tests ---- *)

let prop_gdb_framing =
  QCheck.Test.make ~name:"gdb: frame/deframe identity for arbitrary payloads" ~count:200
    (QCheck.string_of_size (QCheck.Gen.int_range 0 80))
    (fun payload ->
      QCheck.assume (String.for_all (fun c -> c <> '#' && c <> '$' && c <> '}') payload);
      let p = Gdb_proto.create_parser () in
      let framed = Gdb_proto.frame payload in
      let decoded = ref None in
      String.iter
        (fun c ->
          match Gdb_proto.feed p c with `Packet s -> decoded := Some s | _ -> ())
        framed;
      !decoded = Some payload)

let prop_page_table_model =
  QCheck.Test.make ~name:"page table: agrees with a model under random map/unmap" ~count:50
    QCheck.(small_list (triple (int_range 0 63) (int_range 0 255) bool))
    (fun ops ->
      let ram = Physmem.create ~bytes:(1 lsl 22) in
      let next = ref 0x100000 in
      let alloc_page () =
        let a = !next in
        next := !next + 4096;
        a
      in
      let pt = Page_table.create ~ram ~alloc_page in
      let model : (int, int) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun (vpage, ppage, do_map) ->
          let va = Int32.of_int (0x40000000 + (vpage * 4096)) in
          if do_map then begin
            let pa = 0x200000 + (ppage * 4096) in
            Page_table.map pt ~va ~pa ~prot:{ Page_table.writable = true; user = false };
            Hashtbl.replace model vpage pa
          end
          else begin
            Page_table.unmap pt ~va;
            Hashtbl.remove model vpage
          end)
        ops;
      let agree = ref true in
      for vpage = 0 to 63 do
        let va = Int32.of_int (0x40000000 + (vpage * 4096)) in
        let expected = Hashtbl.find_opt model vpage in
        let got =
          Option.map (fun tr -> tr.Page_table.pa) (Page_table.translate pt va)
        in
        if expected <> got then agree := false
      done;
      !agree && Page_table.mapped_pages pt = Hashtbl.length model)

let prop_exec_roundtrip =
  QCheck.Test.make ~name:"exec: pack/parse identity" ~count:100
    QCheck.(
      quad (string_of_size (QCheck.Gen.int_range 0 500))
        (string_of_size (QCheck.Gen.int_range 0 100))
        small_nat int)
    (fun (text, data, bss, entry) ->
      let img =
        { Exec.entry = Int32.of_int entry; load_va = 0x400000l; text; data; bss_size = bss }
      in
      match Exec.parse (Exec.pack img) with
      | Ok p ->
          p.Exec.text = text && p.Exec.data = data && p.Exec.bss_size = bss
          && p.Exec.entry = Int32.of_int entry
      | Error _ -> false)

let suite =
  [ Alcotest.test_case "hard links" `Quick test_hard_links;
    Alcotest.test_case "tcp simultaneous open" `Quick test_simultaneous_open;
    Alcotest.test_case "medium-grained concurrency (4.7.4)" `Quick
      test_medium_grained_concurrency;
    QCheck_alcotest.to_alcotest prop_gdb_framing;
    QCheck_alcotest.to_alcotest prop_page_table_model;
    QCheck_alcotest.to_alcotest prop_exec_roundtrip ]
