(* Integration tests: TCP transfers across the three network
   configurations of the paper's evaluation, on the simulated testbed. *)

let ip = Oskit.ip_of_string
let mask = ip "255.255.255.0"

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected error: %s" (Error.to_string e)

(* Deterministic test pattern. *)
let pattern n =
  Bytes.init n (fun i -> Char.chr ((i * 131) land 0xff))

let digest b = Digest.to_hex (Digest.bytes b)

(* ---- FreeBSD-native <-> FreeBSD-native ---- *)

let run_freebsd_pair ~bytes =
  Clientos.reset_globals ();
  let tb = Clientos.make_testbed () in
  let sa = Clientos.freebsd_host tb.Clientos.host_a ~ip:(ip "10.0.0.1") ~mask in
  let sb = Clientos.freebsd_host tb.Clientos.host_b ~ip:(ip "10.0.0.2") ~mask in
  let received = Buffer.create bytes in
  let done_flag = ref false in
  Clientos.spawn tb.Clientos.host_b ~name:"server" (fun () ->
      let ls = Bsd_socket.tcp_socket sb in
      ok (Bsd_socket.so_bind ls ~port:5001);
      ok (Bsd_socket.so_listen ls ~backlog:5);
      let conn = ok (Bsd_socket.so_accept ls) in
      let buf = Bytes.create 8192 in
      let rec loop () =
        match ok (Bsd_socket.so_recv conn ~buf ~pos:0 ~len:8192) with
        | 0 ->
            ignore (Bsd_socket.so_close conn);
            done_flag := true
        | n ->
            Buffer.add_subbytes received buf 0 n;
            loop ()
      in
      loop ());
  let data = pattern bytes in
  Clientos.spawn tb.Clientos.host_a ~name:"client" (fun () ->
      Kclock.sleep_ns 2_000_000;
      let s = Bsd_socket.tcp_socket sa in
      ok (Bsd_socket.so_connect s ~dst:(ip "10.0.0.2") ~dport:5001);
      let sent = ok (Bsd_socket.so_send s ~buf:data ~pos:0 ~len:bytes) in
      Alcotest.(check int) "all bytes accepted" bytes sent;
      ok (Bsd_socket.so_close s));
  Clientos.run tb ~until:(fun () -> !done_flag);
  Alcotest.(check bool) "transfer completed" true !done_flag;
  Alcotest.(check int) "received size" bytes (Buffer.length received);
  Alcotest.(check string) "payload integrity" (digest data)
    (digest (Buffer.to_bytes received))

(* ---- OSKit config (Linux drivers + FreeBSD stack over COM + POSIX) ---- *)

let run_oskit_pair ~bytes =
  Clientos.reset_globals ();
  Fdev.clear_drivers ();
  let tb = Clientos.make_testbed ~models:("NE2000", "tulip") () in
  let env_a, _stack_a = Clientos.oskit_host tb.Clientos.host_a ~ip:(ip "10.0.0.1") ~mask in
  let env_b, _stack_b = Clientos.oskit_host tb.Clientos.host_b ~ip:(ip "10.0.0.2") ~mask in
  let received = Buffer.create bytes in
  let done_flag = ref false in
  Clientos.spawn tb.Clientos.host_b ~name:"server" (fun () ->
      let fd = ok (Posix.socket env_b Io_if.Sock_stream) in
      ok (Posix.bind env_b fd { Io_if.sin_addr = ip "10.0.0.2"; sin_port = 5001 });
      ok (Posix.listen env_b fd ~backlog:4);
      let conn, _peer = ok (Posix.accept env_b fd) in
      let buf = Bytes.create 8192 in
      let rec loop () =
        match ok (Posix.recv env_b conn buf ~pos:0 ~len:8192) with
        | 0 -> done_flag := true
        | n ->
            Buffer.add_subbytes received buf 0 n;
            loop ()
      in
      loop ());
  let data = pattern bytes in
  Clientos.spawn tb.Clientos.host_a ~name:"client" (fun () ->
      Kclock.sleep_ns 2_000_000;
      let fd = ok (Posix.socket env_a Io_if.Sock_stream) in
      ok (Posix.connect env_a fd { Io_if.sin_addr = ip "10.0.0.2"; sin_port = 5001 });
      let sent = ok (Posix.send env_a fd data ~pos:0 ~len:bytes) in
      Alcotest.(check int) "all bytes accepted" bytes sent;
      ok (Posix.shutdown env_a fd);
      ok (Posix.close env_a fd));
  Clientos.run tb ~until:(fun () -> !done_flag);
  Alcotest.(check bool) "transfer completed" true !done_flag;
  Alcotest.(check string) "payload integrity" (digest data)
    (digest (Buffer.to_bytes received))

(* ---- Linux-native <-> Linux-native ---- *)

let run_linux_pair ~bytes =
  Clientos.reset_globals ();
  let tb = Clientos.make_testbed ~models:("3c59x", "lance") () in
  let sa = Clientos.linux_host tb.Clientos.host_a ~ip:(ip "10.0.0.1") ~mask in
  let sb = Clientos.linux_host tb.Clientos.host_b ~ip:(ip "10.0.0.2") ~mask in
  let received = Buffer.create bytes in
  let done_flag = ref false in
  Clientos.spawn tb.Clientos.host_b ~name:"server" (fun () ->
      let ls = Linux_inet.socket sb in
      Linux_inet.bind sb ls ~port:5001;
      Linux_inet.listen sb ls ~backlog:4;
      let conn = ok (Linux_inet.accept sb ls) in
      let buf = Bytes.create 8192 in
      let rec loop () =
        match ok (Linux_inet.recv sb conn ~buf ~pos:0 ~len:8192) with
        | 0 -> done_flag := true
        | n ->
            Buffer.add_subbytes received buf 0 n;
            loop ()
      in
      loop ());
  let data = pattern bytes in
  Clientos.spawn tb.Clientos.host_a ~name:"client" (fun () ->
      Kclock.sleep_ns 2_000_000;
      let s = Linux_inet.socket sa in
      let _ = ok (Linux_inet.connect sa s ~dst:(ip "10.0.0.2") ~dport:5001) in
      let sent = ok (Linux_inet.send sa s ~buf:data ~pos:0 ~len:bytes) in
      Alcotest.(check int) "all bytes accepted" bytes sent;
      Linux_inet.close sa s);
  Clientos.run tb ~until:(fun () -> !done_flag);
  Alcotest.(check bool) "transfer completed" true !done_flag;
  Alcotest.(check string) "payload integrity" (digest data)
    (digest (Buffer.to_bytes received))

(* ---- interop: OSKit talks to native FreeBSD ---- *)

let run_interop ~bytes =
  Clientos.reset_globals ();
  Fdev.clear_drivers ();
  let tb = Clientos.make_testbed ~models:("eepro100", "tulip") () in
  let env_a, _ = Clientos.oskit_host tb.Clientos.host_a ~ip:(ip "10.0.0.1") ~mask in
  let sb = Clientos.freebsd_host tb.Clientos.host_b ~ip:(ip "10.0.0.2") ~mask in
  let received = Buffer.create bytes in
  let done_flag = ref false in
  Clientos.spawn tb.Clientos.host_b ~name:"server" (fun () ->
      let ls = Bsd_socket.tcp_socket sb in
      ok (Bsd_socket.so_bind ls ~port:7);
      ok (Bsd_socket.so_listen ls ~backlog:1);
      let conn = ok (Bsd_socket.so_accept ls) in
      let buf = Bytes.create 4096 in
      let rec loop () =
        match ok (Bsd_socket.so_recv conn ~buf ~pos:0 ~len:4096) with
        | 0 -> done_flag := true
        | n ->
            Buffer.add_subbytes received buf 0 n;
            loop ()
      in
      loop ());
  let data = pattern bytes in
  Clientos.spawn tb.Clientos.host_a ~name:"client" (fun () ->
      Kclock.sleep_ns 2_000_000;
      let fd = ok (Posix.socket env_a Io_if.Sock_stream) in
      ok (Posix.connect env_a fd { Io_if.sin_addr = ip "10.0.0.2"; sin_port = 7 });
      let _ = ok (Posix.send env_a fd data ~pos:0 ~len:bytes) in
      ok (Posix.shutdown env_a fd));
  Clientos.run tb ~until:(fun () -> !done_flag);
  Alcotest.(check string) "payload integrity across stacks" (digest data)
    (digest (Buffer.to_bytes received))

let suite =
  [ Alcotest.test_case "freebsd-native 256KB transfer" `Quick (fun () ->
        run_freebsd_pair ~bytes:(256 * 1024));
    Alcotest.test_case "oskit-config 256KB transfer" `Quick (fun () ->
        run_oskit_pair ~bytes:(256 * 1024));
    Alcotest.test_case "linux-native 256KB transfer" `Quick (fun () ->
        run_linux_pair ~bytes:(256 * 1024));
    Alcotest.test_case "oskit->freebsd interop 64KB" `Quick (fun () ->
        run_interop ~bytes:(64 * 1024));
    Alcotest.test_case "freebsd tiny (1 byte)" `Quick (fun () -> run_freebsd_pair ~bytes:1);
    Alcotest.test_case "oskit odd size (12345)" `Quick (fun () -> run_oskit_pair ~bytes:12345)
  ]
