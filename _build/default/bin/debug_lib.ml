(* Diagnostic driver: run a single TCP transfer in one configuration with
   verbose state dumps — the first thing to reach for when a stack change
   breaks the integration tests. *)
let ip = Oskit.ip_of_string
let mask = ip "255.255.255.0"
let ok = function Ok v -> v | Error e -> failwith (Error.to_string e)

let run_freebsd bytes =
  let tb = Clientos.make_testbed () in
  World.set_fuel tb.Clientos.world 5_000_000;
  let sa = Clientos.freebsd_host tb.Clientos.host_a ~ip:(ip "10.0.0.1") ~mask in
  let sb = Clientos.freebsd_host tb.Clientos.host_b ~ip:(ip "10.0.0.2") ~mask in
  let done_flag = ref false in
  let got = ref 0 in
  Clientos.spawn tb.Clientos.host_b ~name:"server" (fun () ->
      let ls = Bsd_socket.tcp_socket sb in
      ok (Bsd_socket.so_bind ls ~port:5001);
      ok (Bsd_socket.so_listen ls ~backlog:5);
      let conn = ok (Bsd_socket.so_accept ls) in
      let buf = Bytes.create 8192 in
      let rec loop () =
        match ok (Bsd_socket.so_recv conn ~buf ~pos:0 ~len:8192) with
        | 0 -> done_flag := true
        | n -> got := !got + n; loop ()
      in
      loop ());
  Clientos.spawn tb.Clientos.host_a ~name:"client" (fun () ->
      Kclock.sleep_ns 2_000_000;
      let s = Bsd_socket.tcp_socket sa in
      ok (Bsd_socket.so_connect s ~dst:(ip "10.0.0.2") ~dport:5001);
      let data = Bytes.make bytes 'x' in
      let _ = ok (Bsd_socket.so_send s ~buf:data ~pos:0 ~len:bytes) in
      ok (Bsd_socket.so_close s));
  (try Clientos.run tb ~until:(fun () -> !done_flag)
   with World.Out_of_fuel -> print_endline "OUT OF FUEL");
  Printf.printf "freebsd %d: done=%b got=%d now=%dns rexmit=%d\n%!" bytes !done_flag !got
    (World.now tb.Clientos.world) sa.Bsd_socket.tcp.Tcp.stats.Tcp.sndrexmitpack;
  ignore sb

let run_oskit bytes =
  Clientos.reset_globals ();
  Fdev.clear_drivers ();
  let tb = Clientos.make_testbed ~models:("NE2000", "tulip") () in
  World.set_fuel tb.Clientos.world 5_000_000;
  let env_a, _ = Clientos.oskit_host tb.Clientos.host_a ~ip:(ip "10.0.0.1") ~mask in
  let env_b, _ = Clientos.oskit_host tb.Clientos.host_b ~ip:(ip "10.0.0.2") ~mask in
  let done_flag = ref false in
  let got = ref 0 in
  Clientos.spawn tb.Clientos.host_b ~name:"server" (fun () ->
      let fd = ok (Posix.socket env_b Io_if.Sock_stream) in
      ok (Posix.bind env_b fd { Io_if.sin_addr = ip "10.0.0.2"; sin_port = 5001 });
      ok (Posix.listen env_b fd ~backlog:4);
      print_endline "oskit server: listening";
      let conn, _ = ok (Posix.accept env_b fd) in
      print_endline "oskit server: accepted";
      let buf = Bytes.create 8192 in
      let rec loop () =
        match ok (Posix.recv env_b conn buf ~pos:0 ~len:8192) with
        | 0 -> done_flag := true
        | n -> got := !got + n; loop ()
      in
      loop ());
  Clientos.spawn tb.Clientos.host_a ~name:"client" (fun () ->
      Kclock.sleep_ns 2_000_000;
      let fd = ok (Posix.socket env_a Io_if.Sock_stream) in
      print_endline "oskit client: connecting";
      ok (Posix.connect env_a fd { Io_if.sin_addr = ip "10.0.0.2"; sin_port = 5001 });
      print_endline "oskit client: connected";
      let data = Bytes.make bytes 'x' in
      let _ = ok (Posix.send env_a fd data ~pos:0 ~len:bytes) in
      print_endline "oskit client: sent";
      ok (Posix.shutdown env_a fd));
  (try Clientos.run tb ~until:(fun () -> !done_flag)
   with World.Out_of_fuel -> print_endline "OUT OF FUEL");
  Printf.printf "oskit %d: done=%b got=%d now=%dns\n%!" bytes !done_flag !got
    (World.now tb.Clientos.world)

let run_linux bytes =
  Clientos.reset_globals ();
  let tb = Clientos.make_testbed ~models:("3c59x", "lance") () in
  World.set_fuel tb.Clientos.world 5_000_000;
  let sa = Clientos.linux_host tb.Clientos.host_a ~ip:(ip "10.0.0.1") ~mask in
  let sb = Clientos.linux_host tb.Clientos.host_b ~ip:(ip "10.0.0.2") ~mask in
  let done_flag = ref false in
  let got = ref 0 in
  Clientos.spawn tb.Clientos.host_b ~name:"server" (fun () ->
      let ls = Linux_inet.socket sb in
      Linux_inet.bind sb ls ~port:5001;
      Linux_inet.listen sb ls ~backlog:4;
      let conn = ok (Linux_inet.accept sb ls) in
      print_endline "linux server: accepted";
      let buf = Bytes.create 8192 in
      let rec loop () =
        match ok (Linux_inet.recv sb conn ~buf ~pos:0 ~len:8192) with
        | 0 -> done_flag := true
        | n -> got := !got + n; loop ()
      in
      loop ());
  Clientos.spawn tb.Clientos.host_a ~name:"client" (fun () ->
      Kclock.sleep_ns 2_000_000;
      let s = Linux_inet.socket sa in
      ok (Linux_inet.connect sa s ~dst:(ip "10.0.0.2") ~dport:5001);
      print_endline "linux client: connected";
      let data = Bytes.make bytes 'x' in
      let _ = ok (Linux_inet.send sa s ~buf:data ~pos:0 ~len:bytes) in
      Linux_inet.close sa s);
  (try Clientos.run tb ~until:(fun () -> !done_flag)
   with World.Out_of_fuel -> print_endline "OUT OF FUEL");
  Printf.printf "linux %d: done=%b got=%d now=%dns rexmits=%d\n%!" bytes !done_flag !got
    (World.now tb.Clientos.world) sa.Linux_inet.rexmits

