let ip = Oskit.ip_of_string
let mask = ip "255.255.255.0"
let ok = function Ok v -> v | Error e -> failwith (Error.to_string e)

let () =
  let w = World.create () in
  World.set_fuel w 2_000_000;
  let wire = Wire.create w in
  let mk name mac ipaddr =
    let machine = Machine.create ~name w in
    let sched = Thread.create_sched machine in
    Thread.install sched;
    let nic = Nic.create ~machine ~wire ~mac ~irq:9 () in
    let stack = Bsd_socket.create_stack machine ~hwaddr:mac ~name in
    Native_if.attach stack nic;
    Bsd_socket.ifconfig stack ~addr:(ip ipaddr) ~mask;
    machine, sched, stack
  in
  let ma, ka, sa = mk "tcp-a" "\x02\x00\x00\x00\x01\x0a" "10.2.0.1" in
  let mb, kb, sb = mk "tcp-b" "\x02\x00\x00\x00\x01\x0b" "10.2.0.2" in
  let n = ref 0 in
  Wire.set_fault_injector wire (Some (fun _ -> incr n; !n mod 13 = 0));
  let bytes = 200 * 1024 in
  let data = Bytes.init bytes (fun i -> Char.chr ((i * 31) land 0xff)) in
  let received = Buffer.create bytes in
  let done_flag = ref false in
  Thread.spawn kb ~name:"server" (fun () ->
      let ls = Bsd_socket.tcp_socket sb in
      ok (Bsd_socket.so_bind ls ~port:5001);
      ok (Bsd_socket.so_listen ls ~backlog:5);
      let conn = ok (Bsd_socket.so_accept ls) in
      let buf = Bytes.create 8192 in
      let rec loop () =
        match ok (Bsd_socket.so_recv conn ~buf ~pos:0 ~len:8192) with
        | 0 -> done_flag := true
        | k -> Buffer.add_subbytes received buf 0 k; loop ()
      in loop ());
  Machine.kick mb;
  Thread.spawn ka ~name:"client" (fun () ->
      Kclock.sleep_ns 1_000_000;
      let s = Bsd_socket.tcp_socket sa in
      ok (Bsd_socket.so_connect s ~dst:(ip "10.2.0.2") ~dport:5001);
      let _ = ok (Bsd_socket.so_send s ~buf:data ~pos:0 ~len:bytes) in
      ok (Bsd_socket.so_close s));
  Machine.kick ma;
  (try World.run w ~until:(fun () -> !done_flag) with World.Out_of_fuel ->
    print_endline "OUT OF FUEL");
  Printf.printf "done=%b received=%d/%d now=%.3fs dropped=%d\n" !done_flag
    (Buffer.length received) bytes (float_of_int (World.now w) /. 1e9)
    (Wire.frames_dropped wire);
  let st = sa.Bsd_socket.tcp.Tcp.stats in
  Printf.printf "a: snd=%d rexmit=%d fast=%d drops=%d\n" st.Tcp.sndpack st.Tcp.sndrexmitpack st.Tcp.fastrexmit st.Tcp.drops;
  let stb = sb.Bsd_socket.tcp.Tcp.stats in
  Printf.printf "b: rcv=%d dup=%d oo=%d badsum=%d snd=%d\n" stb.Tcp.rcvpack stb.Tcp.rcvdup stb.Tcp.rcvoo stb.Tcp.rcvbadsum stb.Tcp.sndpack;
  List.iter (fun p -> Printf.printf "a pcb: %s snd_una=%d snd_nxt=%d snd_max=%d cwnd=%d wnd=%d sbcc=%d rexmt_t=%d\n"
    (Tcp.state_name p.Tcp.t_state) p.Tcp.snd_una p.Tcp.snd_nxt p.Tcp.snd_max p.Tcp.snd_cwnd p.Tcp.snd_wnd p.Tcp.snd_buf.Sockbuf.sb_cc p.Tcp.tm_rexmt)
    sa.Bsd_socket.tcp.Tcp.pcbs;
  List.iter (fun p -> Printf.printf "b pcb: %s rcv_nxt=%d reass=%d rcvbuf=%d\n"
    (Tcp.state_name p.Tcp.t_state) p.Tcp.rcv_nxt (List.length p.Tcp.reass) p.Tcp.rcv_buf.Sockbuf.sb_cc)
    sb.Bsd_socket.tcp.Tcp.pcbs;
  List.iter (fun (n,e) -> Printf.printf "a thread %s died: %s\n" n (Printexc.to_string e)) (Thread.failures ka);
  List.iter (fun (n,e) -> Printf.printf "b thread %s died: %s\n" n (Printexc.to_string e)) (Thread.failures kb)
