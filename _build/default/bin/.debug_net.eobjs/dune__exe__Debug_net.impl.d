bin/debug_net.ml: Array Debug_lib Sys
