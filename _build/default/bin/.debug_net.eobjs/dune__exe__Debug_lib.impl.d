bin/debug_lib.ml: Bsd_socket Bytes Clientos Error Fdev Io_if Kclock Linux_inet Oskit Posix Printf Tcp World
