bin/debug_net.mli:
