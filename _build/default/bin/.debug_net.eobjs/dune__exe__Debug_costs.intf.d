bin/debug_costs.mli:
