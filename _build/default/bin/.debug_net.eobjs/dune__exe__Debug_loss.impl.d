bin/debug_loss.ml: Bsd_socket Buffer Bytes Char Error Kclock List Machine Native_if Nic Oskit Printexc Printf Sockbuf Tcp Thread Wire World
