bin/debug_costs.ml: Bsd_socket Bytes Clientos Cost Error Fdev Kclock Machine Oskit Printf Tcp
