bin/debug_loss.mli:
