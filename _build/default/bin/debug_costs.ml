(* Sweep cost knobs to see per-component contribution to ttcp elapsed. *)
let run label setup =
  Clientos.reset_globals ();
  Fdev.clear_drivers ();
  setup ();
  let ip = Oskit.ip_of_string in
  let mask = ip "255.255.255.0" in
  let ok = function Ok v -> v | Error e -> failwith (Error.to_string e) in
  let tb = Clientos.make_testbed () in
  let sa = Clientos.freebsd_host tb.Clientos.host_a ~ip:(ip "10.0.0.1") ~mask in
  let sb = Clientos.freebsd_host tb.Clientos.host_b ~ip:(ip "10.0.0.2") ~mask in
  let bytes = 4 * 1024 * 1024 in
  let done_flag = ref false in
  let t0 = ref 0 and t1 = ref 0 in
  Clientos.spawn tb.Clientos.host_b (fun () ->
      let ls = Bsd_socket.tcp_socket sb in
      ok (Bsd_socket.so_bind ls ~port:5001);
      ok (Bsd_socket.so_listen ls ~backlog:1);
      let conn = ok (Bsd_socket.so_accept ls) in
      let buf = Bytes.create 16384 in
      let rec loop () =
        match ok (Bsd_socket.so_recv conn ~buf ~pos:0 ~len:16384) with
        | 0 -> (t1 := Machine.now tb.Clientos.host_b.Clientos.machine; done_flag := true)
        | _ -> loop ()
      in loop ());
  Clientos.spawn tb.Clientos.host_a (fun () ->
      Kclock.sleep_ns 2_000_000;
      t0 := Machine.now tb.Clientos.host_a.Clientos.machine;
      let s = Bsd_socket.tcp_socket sa in
      ok (Bsd_socket.so_connect s ~dst:(ip "10.0.0.2") ~dport:5001);
      let data = Bytes.make 16384 'x' in
      for _ = 1 to bytes / 16384 do ignore (ok (Bsd_socket.so_send s ~buf:data ~pos:0 ~len:16384)) done;
      ok (Bsd_socket.so_close s));
  Clientos.run tb ~until:(fun () -> !done_flag);
  Printf.printf "%-28s %6.2f Mbit/s  (segments=%d acks~=%d)\n%!" label
    (float_of_int bytes *. 8e3 /. float_of_int (!t1 - !t0))
    sa.Bsd_socket.tcp.Tcp.stats.Tcp.sndpack sb.Bsd_socket.tcp.Tcp.stats.Tcp.sndpack

let () =
  run "defaults" (fun () -> ());
  run "no copies" (fun () -> Cost.config.Cost.copy_cycles_per_byte <- 0);
  run "no checksum" (fun () -> Cost.config.Cost.checksum_cycles_per_byte <- 0);
  run "no tcp pkt cost" (fun () -> Cost.config.Cost.bsd_tcp_pkt_cycles <- 0);
  run "no driver pkt cost" (fun () -> Cost.config.Cost.linux_driver_pkt_cycles <- 0);
  run "no alloc cost" (fun () -> Cost.config.Cost.alloc_cycles <- 0);
  run "no irq cost" (fun () -> Cost.config.Cost.irq_entry_cycles <- 0);
  run "everything free" (fun () ->
      Cost.config.Cost.copy_cycles_per_byte <- 0;
      Cost.config.Cost.checksum_cycles_per_byte <- 0;
      Cost.config.Cost.bsd_tcp_pkt_cycles <- 0;
      Cost.config.Cost.linux_driver_pkt_cycles <- 0;
      Cost.config.Cost.alloc_cycles <- 0;
      Cost.config.Cost.irq_entry_cycles <- 0;
      Cost.config.Cost.socket_op_cycles <- 0)
