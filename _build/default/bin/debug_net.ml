(* usage: debug_net (freebsd|oskit|linux) <bytes> *)
let () =
  match Sys.argv.(1) with
  | "freebsd" -> Debug_lib.run_freebsd (int_of_string Sys.argv.(2))
  | "oskit" -> Debug_lib.run_oskit (int_of_string Sys.argv.(2))
  | "linux" -> Debug_lib.run_linux (int_of_string Sys.argv.(2))
  | _ -> failwith "usage"
