(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation on the simulated testbed, plus the ablations
   DESIGN.md calls out.

   Sections (run all, or name them on the command line):
     table1     TCP bandwidth matrix (ttcp)               — paper Table 1
     table2     TCP 1-byte round-trip latency (rtcp)      — paper Table 2
     table3     component source-size inventory           — paper Table 3
     footprint  static size of the netcomputer config     — paper §6.2.5
     vmnet      TCP throughput measured from the VM       — paper §6.2.6
     alloc      allocator micro-benchmarks (Bechamel)     — paper §6.2.10
     glue       glue-overhead ablation                    — DESIGN.md A
     copies     per-packet copy accounting                — DESIGN.md B
     chaos      ttcp goodput under injected faults        — netem
     sgsmoke    scatter-gather send-path CI gate
     http       event-driven vs threaded HTTP serving     — oskit_asyncio
     httpsmoke  64-client asyncio CI gate
     rtt        rtcp latency percentiles, receive fast path on/off
     rttsmoke   receive fast-path CI gate (equivalence + strict RTT win)
     longfat    ttcp over RTT x loss grid, wscale/NewReno/autotune — long fat pipes
     longfatsmoke  long-fat-pipe CI gate (byte-exact, 5x, autotune, persist)
     overload   SYN flood x alloc failure x Slowloris, legit-client goodput
     overloadsmoke  overload-survival CI gate (goodput ratio, byte-exact soak)
     smp        multi-CPU scale-out: netisr-sharded reactor httpd, RSS steering
     smpsmoke   SMP CI gate (byte-exact, 4-CPU win, lock-free hot path)
     event      kqueue O(ready) dispatch + timing-wheel O(due) curves
     eventsmoke event-core CI gate (flat dispatch, timing contract, byte-exact)
     file       HTTP/1.1 keep-alive + sendfile content path: req/s and copies/req
     filesmoke  content-path CI gate (keep-alive win, zero warm copies, byte-exact)

   Network numbers come from the deterministic virtual-time simulation
   (they are not wall-clock); the allocator section uses Bechamel
   wall-clock measurement of the real data structures. *)

let section_header title = Printf.printf "\n=== %s ===\n%!" title

(* Scale knob: OSKIT_BENCH_BLOCKS overrides the per-run block count (the
   paper used 131072 blocks of 4096; the default here keeps a full matrix
   run to a couple of minutes of wall clock with identical shapes). *)
let blocks =
  match Sys.getenv_opt "OSKIT_BENCH_BLOCKS" with
  | Some v -> int_of_string v
  | None -> 2048

let blocksize = 4096

(* Flags that modify sections (set by the driver below):
     --sg    add a scatter-gather send column / counter audit to table1
     --json  also write each table as BENCH_<section>.json *)
let want_sg = ref false
let want_json = ref false

(* Minimal JSON emission: the repository carries no JSON library, and
   these records are flat. *)
let json_obj fields = "{" ^ String.concat ", " fields ^ "}"
let json_str k v = Printf.sprintf "%S: %S" k v
let json_int k v = Printf.sprintf "%S: %d" k v
let json_float k v = Printf.sprintf "%S: %.4f" k v

let write_json file rows_name header rows =
  let oc = open_out file in
  output_string oc "{\n";
  List.iter (fun line -> output_string oc ("  " ^ line ^ ",\n")) header;
  output_string oc (Printf.sprintf "  %S: [\n" rows_name);
  let n = List.length rows in
  List.iteri
    (fun i row ->
      output_string oc ("    " ^ row ^ (if i = n - 1 then "\n" else ",\n")))
    rows;
  output_string oc "  ]\n}\n";
  close_out oc;
  Printf.printf "(wrote %s)\n%!" file

(* ---------------- Table 1 ---------------- *)

let table1 () =
  section_header "Table 1: TCP bandwidth, ttcp (Mbit/s)";
  Printf.printf "workload: %d blocks x %d bytes = %.1f MB per run, 100 Mbps Ethernet\n\n"
    blocks blocksize
    (float_of_int (blocks * blocksize) /. 1048576.0);
  Printf.printf "%-22s %14s %14s\n" "system" "send (Mbit/s)" "recv (Mbit/s)";
  let fixed = Netbench.Freebsd in
  let rows =
    List.map
      (fun config ->
        (* Send row: [config] transmits to a native FreeBSD sink; receive
           row: a native FreeBSD source transmits to [config]. *)
        let send = Netbench.transfer ~sender:config ~receiver:fixed ~blocks ~blocksize () in
        let recv = Netbench.transfer ~sender:fixed ~receiver:config ~blocks ~blocksize () in
        Printf.printf "%-22s %14.2f %14.2f\n%!" (Netbench.config_name config)
          send.Netbench.mbit_sender recv.Netbench.mbit_e2e;
        config, send, recv)
      [ Netbench.Linux; Netbench.Freebsd; Netbench.Oskit ]
  in
  print_newline ();
  print_endline "paper's qualitative claims (Section 5):";
  print_endline "  - OSKit receives about as fast as FreeBSD (zero-copy skbuff->mbuf map)";
  print_endline "  - OSKit send is lower: mbuf chains are flattened into skbuffs (extra copy)";
  let sg_rows =
    if not !want_sg then []
    else begin
      Printf.printf "\nwith --sg (scatter-gather transmit at the glue, Cost.sg_tx):\n";
      Printf.printf "%-22s %14s %14s %10s %10s %12s\n" "system" "send (Mbit/s)"
        "send sg on" "sg xmits" "flattened" "copies/kpkt";
      List.map
        (fun (config, send, _) ->
          let sg =
            Netbench.transfer ~sg:true ~sender:config ~receiver:fixed ~blocks ~blocksize ()
          in
          Printf.printf "%-22s %14.2f %14.2f %10d %10d %12d\n%!"
            (Netbench.config_name config) send.Netbench.mbit_sender
            sg.Netbench.mbit_sender sg.Netbench.sg_xmits sg.Netbench.linearized_xmits
            sg.Netbench.copies_per_kpkt;
          config, sg)
        rows
    end
  in
  (match List.assoc_opt Netbench.Oskit (List.map (fun (c, s) -> c, s) sg_rows) with
  | Some sg ->
      let fbsd_send =
        List.find_map
          (fun (c, s, _) -> if c = Netbench.Freebsd then Some s.Netbench.mbit_sender else None)
          rows
        |> Option.get
      in
      Printf.printf
        "\nOSKit --sg send is %.1f%% of native FreeBSD send (flatten copy eliminated:\n\
         %d sg xmits, %d linearized)\n"
        (100.0 *. sg.Netbench.mbit_sender /. fbsd_send)
        sg.Netbench.sg_xmits sg.Netbench.linearized_xmits
  | None -> ());
  if !want_json then
    write_json "BENCH_table1.json" "rows"
      [ json_str "bench" "table1"; json_int "blocks" blocks;
        json_int "blocksize" blocksize; json_str "unit" "Mbit/s" ]
      (List.map
         (fun (config, send, recv) ->
           let base =
             [ json_str "system" (Netbench.config_name config);
               json_float "send_mbit" send.Netbench.mbit_sender;
               json_float "recv_mbit" recv.Netbench.mbit_e2e;
               json_int "send_copies_per_kpkt" send.Netbench.copies_per_kpkt;
               json_int "send_crossings_per_kpkt" send.Netbench.crossings_per_kpkt;
               json_int "send_sg_xmits" send.Netbench.sg_xmits;
               json_int "send_linearized_xmits" send.Netbench.linearized_xmits;
               json_int "send_checksummed_bytes" send.Netbench.checksummed_bytes ]
           in
           let sg_fields =
             match List.assoc_opt config (List.map (fun (c, s) -> c, s) sg_rows) with
             | Some sg ->
                 [ json_float "send_sg_mbit" sg.Netbench.mbit_sender;
                   json_int "sg_sg_xmits" sg.Netbench.sg_xmits;
                   json_int "sg_linearized_xmits" sg.Netbench.linearized_xmits ]
             | None -> []
           in
           json_obj (base @ sg_fields))
         rows)

(* ---------------- Table 2 ---------------- *)

let table2 () =
  section_header "Table 2: TCP 1-byte round-trip time, rtcp (usec)";
  Printf.printf "%-22s %12s\n" "system" "RTT (usec)";
  let rows =
    List.map
      (fun config ->
        let rtt = Netbench.rtt_us config ~trips:200 in
        Printf.printf "%-22s %12.1f\n%!" (Netbench.config_name config) rtt;
        config, rtt)
      [ Netbench.Linux; Netbench.Freebsd; Netbench.Oskit ]
  in
  print_newline ();
  print_endline "paper's qualitative claim: the OSKit imposes significant latency";
  print_endline "overhead vs FreeBSD — glue-code crossings, not data copies (1-byte)";
  if !want_json then
    write_json "BENCH_table2.json" "rows"
      [ json_str "bench" "table2"; json_int "trips" 200; json_str "unit" "usec" ]
      (List.map
         (fun (config, rtt) ->
           json_obj
             [ json_str "system" (Netbench.config_name config); json_float "rtt_us" rtt ])
         rows)

(* ---------------- Table 3 ---------------- *)

let table3 () =
  section_header "Table 3: filtered source sizes of the OSKit components";
  let lib_dir =
    List.find_opt Sys.file_exists [ "lib"; "../lib"; "../../lib" ]
    |> Option.value ~default:"lib"
  in
  if Sys.file_exists lib_dir then Loc_table.print_table ~lib_dir
  else print_endline "(source tree not found from this working directory)"

(* ---------------- footprint (Section 6.2.5) ---------------- *)

let dir_object_bytes dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then 0
  else begin
    let total = ref 0 in
    let rec walk d =
      Array.iter
        (fun entry ->
          let path = Filename.concat d entry in
          if Sys.is_directory path then walk path
          else if Filename.check_suffix entry ".o" || Filename.check_suffix entry ".cmx"
          then total := !total + (Unix.stat path).Unix.st_size)
        (Sys.readdir d)
    in
    (try walk dir with Sys_error _ -> ());
    !total
  end

let footprint () =
  section_header "Section 6.2.5: static footprint of the network-computer configuration";
  let build_lib comp = Printf.sprintf "_build/default/lib/%s" comp in
  let groups =
    [ "drivers (linux_dev + fdev)", [ "linux_dev"; "fdev" ];
      "networking (freebsd_net)", [ "freebsd_net" ];
      "VM + bindings (vm)", [ "vm" ];
      "C library + POSIX (libc)", [ "libc" ];
      "kernel support (kern/boot/machine)", [ "kern"; "boot"; "machine" ];
      "memory managers (lmm/amm)", [ "lmm"; "amm" ];
      "COM + glue core (com/core)", [ "com"; "core" ] ]
  in
  let rows =
    List.map
      (fun (label, comps) ->
        label, List.fold_left (fun a c -> a + dir_object_bytes (build_lib c)) 0 comps)
      groups
  in
  if List.for_all (fun (_, b) -> b = 0) rows then
    print_endline "(no build artifacts found — run from the repository root after dune build)"
  else begin
    Printf.printf "%-40s %10s\n" "component group" "KB";
    let total = ref 0 in
    List.iter
      (fun (label, bytes) ->
        total := !total + bytes;
        Printf.printf "%-40s %10.1f\n" label (float_of_int bytes /. 1024.0))
      rows;
    Printf.printf "%-40s %10.1f\n" "total (cf. paper: 412KB incl. 121KB net)"
      (float_of_int !total /. 1024.0);
    print_endline "\nmodularity check: a no-file-system build omits netbsd_fs entirely:";
    Printf.printf "%-40s %10.1f\n" "netbsd_fs (not linked in this config)"
      (float_of_int (dir_object_bytes (build_lib "netbsd_fs")) /. 1024.0)
  end

(* ---------------- vmnet (Section 6.2.6) ---------------- *)

let vmnet () =
  section_header "Section 6.2.6: TCP throughput measured from the bytecode VM (OSKit config)";
  let bytes = blocks * blocksize in
  let recv = Netbench.vm_throughput ~direction:`Receive ~bytes in
  let send = Netbench.vm_throughput ~direction:`Send ~bytes in
  Printf.printf "VM receive: %6.2f Mbit/s   (paper: 78 Mbit/s on 100 Mbps Ethernet)\n" recv;
  Printf.printf "VM send:    %6.2f Mbit/s   (paper: 59 Mbit/s — \"lower due to the extra copy\")\n"
    send

(* ---------------- alloc (Section 6.2.10, Bechamel) ---------------- *)

let alloc () =
  section_header "Section 6.2.10: allocator micro-benchmarks (wall clock, Bechamel)";
  let open Bechamel in
  (* The deficiency the paper reports: the LMM is built for flexibility,
     not common-case speed; a conventional high-level allocator (the BSD
     bucket allocator here) is much faster for small hot-path blocks. *)
  let lmm_test =
    let lmm = Lmm.create () in
    Lmm.add_region lmm ~min:0 ~size:(1 lsl 22) ~flags:0 ~pri:0;
    Lmm.add_free lmm ~addr:0 ~size:(1 lsl 22);
    Test.make ~name:"lmm alloc+free 128B"
      (Staged.stage (fun () ->
           match Lmm.alloc lmm ~size:128 ~flags:0 with
           | Some addr -> Lmm.free lmm ~addr ~size:128
           | None -> assert false))
  in
  let pool_test =
    let lmm = Lmm.create () in
    Lmm.add_region lmm ~min:0 ~size:(1 lsl 22) ~flags:0 ~pri:0;
    Lmm.add_free lmm ~addr:0 ~size:(1 lsl 22);
    let pool =
      Bsd_malloc.create ~client_alloc:(fun size ->
          Lmm.alloc_aligned lmm ~size ~flags:0 ~align_bits:12 ~align_ofs:0)
    in
    Test.make ~name:"bsd bucket alloc+free 128B"
      (Staged.stage (fun () ->
           match Bsd_malloc.malloc pool 128 with
           | Some addr -> Bsd_malloc.free pool addr
           | None -> assert false))
  in
  let libc_test =
    Test.make ~name:"libc malloc+free 128B"
      (Staged.stage (fun () -> Malloc.free (Malloc.malloc 128)))
  in
  let amm_test =
    let amm = Amm.create ~lo:0 ~hi:(1 lsl 22) ~flags:Amm.free in
    Test.make ~name:"amm allocate+deallocate 128B"
      (Staged.stage (fun () ->
           match Amm.allocate amm ~size:128 () with
           | Some addr -> Amm.deallocate amm ~addr ~size:128
           | None -> assert false))
  in
  let kalloc_test =
    let lmm = Lmm.create () in
    Lmm.add_region lmm ~min:0 ~size:(1 lsl 22) ~flags:0 ~pri:0;
    Lmm.add_free lmm ~addr:0 ~size:(1 lsl 22);
    let k = Kalloc.create lmm in
    Test.make ~name:"kalloc alloc+free 128B"
      (Staged.stage (fun () ->
           match Kalloc.alloc k ~size:128 with
           | Some addr -> Kalloc.free k addr
           | None -> assert false))
  in
  let tests =
    Test.make_grouped ~name:"allocators"
      [ lmm_test; pool_test; libc_test; amm_test; kalloc_test ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg [ instance ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let names = Hashtbl.fold (fun name _ acc -> name :: acc) results [] in
  List.iter
    (fun name ->
      let est = Hashtbl.find results name in
      match Analyze.OLS.estimates est with
      | Some (t :: _) -> Printf.printf "%-34s %10.1f ns/op\n" name t
      | _ -> Printf.printf "%-34s  (no estimate)\n" name)
    (List.sort compare names);
  (* Head-to-head on a fragmented heap — the state a long-running kernel
     reaches.  256 pinned 16-byte live blocks leave 256 non-coalescable
     16-byte holes at the front of the LMM's address-sorted free list;
     every first-fit alloc of anything larger walks all of them, and every
     free walks them again to find its insertion point.  The size-class
     pool serves the same requests O(1) from per-slab freelists. *)
  print_endline "\nraw LMM vs size-class pool on a fragmented heap (256 x 16B holes):";
  Printf.printf "%10s %14s %14s %10s\n" "size (B)" "lmm (ns/op)" "kalloc (ns/op)" "speedup";
  let holes = 256 in
  let iters = 50_000 in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters
  in
  let fragmented_lmm () =
    let lmm = Lmm.create () in
    Lmm.add_region lmm ~min:0 ~size:(1 lsl 22) ~flags:0 ~pri:0;
    Lmm.add_free lmm ~addr:0 ~size:(1 lsl 22);
    let addrs =
      Array.init (2 * holes) (fun _ ->
          match Lmm.alloc lmm ~size:16 ~flags:0 with Some a -> a | None -> assert false)
    in
    Array.iteri (fun i a -> if i land 1 = 0 then Lmm.free lmm ~addr:a ~size:16) addrs;
    lmm
  in
  List.iter
    (fun size ->
      let lmm = fragmented_lmm () in
      let lmm_ns =
        time (fun () ->
            for _ = 1 to iters do
              match Lmm.alloc lmm ~size ~flags:0 with
              | Some a -> Lmm.free lmm ~addr:a ~size
              | None -> assert false
            done)
      in
      let k = Kalloc.create (fragmented_lmm ()) in
      let kalloc_ns =
        time (fun () ->
            for _ = 1 to iters do
              match Kalloc.alloc k ~size with
              | Some a -> Kalloc.free k a
              | None -> assert false
            done)
      in
      Printf.printf "%10d %14.1f %14.1f %9.1fx\n%!" size lmm_ns kalloc_ns
        (lmm_ns /. kalloc_ns))
    [ 32; 64; 128; 256 ];
  (* One allocator's class stats after mixed-size churn: a kmem-cache
     report. *)
  let lmm = Lmm.create () in
  Lmm.add_region lmm ~min:0 ~size:(1 lsl 22) ~flags:0 ~pri:0;
  Lmm.add_free lmm ~addr:0 ~size:(1 lsl 22);
  let k = Kalloc.create lmm in
  let ws = Array.init holes (fun i ->
      match Kalloc.alloc k ~size:(16 lsl (i land 3)) with
      | Some a -> a
      | None -> assert false)
  in
  Array.iter (fun a -> Kalloc.free k a) ws;
  print_newline ();
  Format.printf "%a@." Kalloc.pp k;
  print_endline "paper's claim: \"a significant amount of time is spent in memory";
  print_endline "allocation ... a more conventional high-level allocator would be more";
  print_endline "appropriate, possibly layered on top of the OSKit's low-level one.\"";
  print_endline "the size-class allocator above is that layering (DESIGN.md, 6.2.10)"

(* ---------------- ablations ---------------- *)

let glue () =
  section_header "Ablation A: glue-crossing cost vs OSKit throughput and latency";
  Printf.printf "%-28s %14s %12s\n" "glue_crossing_cycles" "send (Mbit/s)" "RTT (usec)";
  List.iter
    (fun cycles ->
      Cost.reset_config ();
      Cost.config.Cost.glue_crossing_cycles <- cycles;
      let t =
        Netbench.transfer ~sender:Netbench.Oskit ~receiver:Netbench.Freebsd
          ~blocks:(blocks / 2) ~blocksize ()
      in
      let rtt = Netbench.rtt_us Netbench.Oskit ~trips:100 in
      Printf.printf "%-28d %14.2f %12.1f\n%!" cycles t.Netbench.mbit_sender rtt)
    [ 0; 500; 1500; 3000; 6000 ];
  Cost.reset_config ();
  print_endline "\n(cycles=0 isolates the copy cost; the remainder is \"the price we pay";
  print_endline " for modularity and separability\", Section 5)"

let copies () =
  section_header "Ablation B: per-packet copy and crossing accounting";
  Printf.printf "%-28s %18s %18s\n" "configuration" "copies/1000 pkts" "crossings/1000 pkts";
  List.iter
    (fun (label, sender, receiver) ->
      let t = Netbench.transfer ~sender ~receiver ~blocks:(blocks / 2) ~blocksize () in
      Printf.printf "%-28s %18d %18d\n%!" label t.Netbench.copies_per_kpkt
        t.Netbench.crossings_per_kpkt)
    [ "FreeBSD -> FreeBSD", Netbench.Freebsd, Netbench.Freebsd;
      "OSKit -> FreeBSD (send path)", Netbench.Oskit, Netbench.Freebsd;
      "FreeBSD -> OSKit (recv path)", Netbench.Freebsd, Netbench.Oskit;
      "Linux -> Linux", Netbench.Linux, Netbench.Linux ];
  print_endline "\nthe send path shows the extra flattening copy; the receive path does not"

(* ---------------- chaos: goodput under injected loss ---------------- *)

let chaos () =
  section_header "Chaos: ttcp goodput vs injected loss (netem, seed 42)";
  Printf.printf
    "each run: %d blocks x %d bytes to a native FreeBSD sink; byte-exact\n\
     means every payload byte arrived once, in order, with the right value\n\n"
    blocks blocksize;
  Printf.printf "%-10s %7s %14s %9s %9s %11s\n" "sender" "loss" "goodput (Mbit/s)"
    "rexmits" "drops" "byte-exact";
  List.iter
    (fun sender ->
      List.iter
        (fun loss ->
          let r =
            Netbench.chaos_transfer ~seed:42 ~loss ~sender
              ~receiver:Netbench.Freebsd ~blocks ~blocksize ()
          in
          Printf.printf "%-10s %6.1f%% %14.2f %9d %9d %11s\n%!"
            (Netbench.config_name sender) (loss *. 100.0)
            r.Netbench.goodput_mbit r.Netbench.chaos_rexmits
            r.Netbench.wire_dropped
            (if r.Netbench.byte_exact then "yes" else "NO");
          if not r.Netbench.byte_exact then
            failwith "chaos: transfer was not byte-exact")
        [ 0.0; 0.005; 0.01; 0.02; 0.05 ])
    [ Netbench.Freebsd; Netbench.Oskit; Netbench.Linux ];
  print_newline ();
  print_endline "retransmissions recover every loss: goodput degrades, correctness doesn't"

(* ---------------- sgsmoke: CI gate for the --sg path ---------------- *)

let sgsmoke () =
  section_header "SG smoke: scatter-gather send path sanity (fails loudly on regression)";
  let dflt =
    Netbench.transfer ~sender:Netbench.Oskit ~receiver:Netbench.Freebsd ~blocks ~blocksize ()
  in
  let sg =
    Netbench.transfer ~sg:true ~sender:Netbench.Oskit ~receiver:Netbench.Freebsd ~blocks
      ~blocksize ()
  in
  Printf.printf "OSKit -> FreeBSD send: default %.2f Mbit/s, sg %.2f Mbit/s\n"
    dflt.Netbench.mbit_sender sg.Netbench.mbit_sender;
  Printf.printf "default: %d linearized xmits; sg: %d sg xmits, %d linearized\n%!"
    dflt.Netbench.linearized_xmits sg.Netbench.sg_xmits sg.Netbench.linearized_xmits;
  if sg.Netbench.mbit_sender < dflt.Netbench.mbit_sender then
    failwith "sgsmoke: sg send slower than default send";
  if dflt.Netbench.linearized_xmits = 0 then
    failwith "sgsmoke: default path no longer flattens (baseline drifted)";
  if sg.Netbench.linearized_xmits <> 0 then
    failwith "sgsmoke: flatten copies remain on the sg path";
  if sg.Netbench.sg_xmits = 0 then failwith "sgsmoke: sg path transmitted nothing via iovec";
  Printf.printf "\n%-7s %16s %9s %11s\n" "loss" "goodput (Mbit/s)" "rexmits" "byte-exact";
  List.iter
    (fun loss ->
      let r =
        Netbench.chaos_transfer ~seed:42 ~loss ~sg:true ~sender:Netbench.Oskit
          ~receiver:Netbench.Freebsd ~blocks ~blocksize ()
      in
      Printf.printf "%6.1f%% %16.2f %9d %11s\n%!" (loss *. 100.0) r.Netbench.goodput_mbit
        r.Netbench.chaos_rexmits
        (if r.Netbench.byte_exact then "yes" else "NO");
      if not r.Netbench.byte_exact then
        failwith "sgsmoke: sg transfer under loss was not byte-exact")
    [ 0.0; 0.01; 0.05 ];
  print_endline "\nsg send >= default send; zero flatten copies; byte-exact under loss"

(* ---------------- rtt: the Table 2 gap, attacked ---------------- *)

(* All three receive-side fast-path layers at once; default off everywhere
   else, so only these two sections ever see them. *)
let fast_flags on f =
  Cost.config.Cost.tcp_fastpath <- on;
  Cost.config.Cost.pcb_hash <- on;
  Cost.config.Cost.rx_batch <- (if on then 8 else 1);
  Fun.protect
    ~finally:(fun () ->
      Cost.config.Cost.tcp_fastpath <- false;
      Cost.config.Cost.pcb_hash <- false;
      Cost.config.Cost.rx_batch <- 1)
    f

let rtt () =
  section_header "RTT distribution: rtcp percentiles, default vs receive fast path";
  print_endline
    "fast path = header prediction + hashed PCB demux + batched RX; flags off\n\
     reproduces Table 2 exactly, flags on closes the gap toward FreeBSD\n";
  Printf.printf "%-10s %-9s %10s %9s %9s %9s %8s %9s %8s %9s\n" "system" "fastpath"
    "mean (us)" "p50" "p95" "p99" "fp hits" "fallback" "pcb hit" "pcb miss";
  let trips = 200 in
  let rows =
    List.concat_map
      (fun config ->
        List.map
          (fun fastpath ->
            let r = Netbench.dist ~fastpath config ~trips in
            Printf.printf "%-10s %-9s %10.1f %9.1f %9.1f %9.1f %8d %9d %8d %9d\n%!"
              (Netbench.config_name config)
              (if fastpath then "on" else "off")
              r.Netbench.rtt_mean_us r.Netbench.rtt_p50_us r.Netbench.rtt_p95_us
              r.Netbench.rtt_p99_us r.Netbench.rtt_fastpath_hits
              r.Netbench.rtt_fastpath_fallbacks r.Netbench.rtt_pcb_cache_hits
              r.Netbench.rtt_pcb_cache_misses;
            config, fastpath, r)
          [ false; true ])
      [ Netbench.Linux; Netbench.Freebsd; Netbench.Oskit ]
  in
  let mean config fastpath =
    let _, _, r = List.find (fun (c, f, _) -> c = config && f = fastpath) rows in
    r.Netbench.rtt_mean_us
  in
  let gap_off = mean Netbench.Oskit false -. mean Netbench.Freebsd false in
  let gap_on = mean Netbench.Oskit true -. mean Netbench.Freebsd false in
  Printf.printf
    "\nOSKit vs native FreeBSD, flags off: +%.1f us per round trip (Table 2's gap)\n\
     OSKit fast path vs the same baseline: +%.1f us (%.0f%% of the gap closed)\n"
    gap_off gap_on
    (100.0 *. (gap_off -. gap_on) /. gap_off);
  (* The same flags under the PR-4 concurrency workload: tail latency on the
     OSKit configuration, where receive frames actually cross the glue. *)
  let http_run on =
    fast_flags on (fun () ->
        Httpbench.run ~config:Httpbench.Oskit_com ~mode:Httpbench.Reactor ~clients:128 ())
  in
  let hoff = http_run false in
  let hon = http_run true in
  let polls = Cost.counters.Cost.rx_polls in
  let frames = Cost.counters.Cost.rx_batched_frames in
  Printf.printf
    "\nhttp, OSKit config, reactor, 128 clients:\n\
    \  p50 %.1f -> %.1f us, p99 %.1f -> %.1f us\n\
    \  batched RX: %d frames over %d polls (%.2f frames/poll)\n"
    hoff.Httpbench.r_p50_us hon.Httpbench.r_p50_us hoff.Httpbench.r_p99_us
    hon.Httpbench.r_p99_us frames polls
    (float_of_int frames /. float_of_int (max 1 polls));
  if !want_json then
    write_json "BENCH_rtt.json" "rows"
      [ json_str "bench" "rtt"; json_int "trips" trips; json_str "unit" "usec";
        json_float "http128_p50_us_default" hoff.Httpbench.r_p50_us;
        json_float "http128_p50_us_fastpath" hon.Httpbench.r_p50_us;
        json_float "http128_p99_us_default" hoff.Httpbench.r_p99_us;
        json_float "http128_p99_us_fastpath" hon.Httpbench.r_p99_us;
        json_int "http128_rx_polls" polls;
        json_int "http128_rx_frames" frames ]
      (List.map
         (fun (config, fastpath, r) ->
           json_obj
             [ json_str "system" (Netbench.config_name config);
               json_str "fastpath" (if fastpath then "on" else "off");
               json_float "mean_us" r.Netbench.rtt_mean_us;
               json_float "p50_us" r.Netbench.rtt_p50_us;
               json_float "p95_us" r.Netbench.rtt_p95_us;
               json_float "p99_us" r.Netbench.rtt_p99_us;
               json_int "fastpath_hits" r.Netbench.rtt_fastpath_hits;
               json_int "fastpath_fallbacks" r.Netbench.rtt_fastpath_fallbacks;
               json_int "pcb_cache_hits" r.Netbench.rtt_pcb_cache_hits;
               json_int "pcb_cache_misses" r.Netbench.rtt_pcb_cache_misses;
               json_int "rx_polls" r.Netbench.rtt_rx_polls;
               json_int "rx_frames" r.Netbench.rtt_rx_frames ])
         rows)

(* ---------------- http: asyncio concurrency experiment ---------------- *)

let http_header () =
  Printf.printf
    "file: %d B from memfs; RAM budget %d KB -> %d handler threads (32KB stack)\n\
     vs %d reactor connections (2KB state); listen backlog %d; %d reqs/client\n\n"
    Httpbench.file_bytes (Httpbench.ram_budget / 1024) Httpbench.max_threads
    Httpbench.max_conns Httpbench.backlog 2;
  Printf.printf "%-9s %-8s %8s %10s %10s %10s %6s %9s %6s\n" "stack" "mode"
    "clients" "req/s" "p50 (us)" "p99 (us)" "peak" "overflow" "shed"

let http_row r =
  Printf.printf "%-9s %-8s %8d %10.0f %10.1f %10.1f %6d %9d %6d\n%!"
    (Httpbench.config_name r.Httpbench.r_config)
    (Httpbench.mode_name r.Httpbench.r_mode)
    r.Httpbench.r_clients r.Httpbench.r_rps r.Httpbench.r_p50_us r.Httpbench.r_p99_us
    r.Httpbench.r_peak_active r.Httpbench.r_listen_overflow r.Httpbench.r_shed

let http_check r =
  if r.Httpbench.r_mismatches > 0 then failwith "http: response was not byte-exact";
  if r.Httpbench.r_protocol_errors > 0 then failwith "http: server saw protocol errors";
  if r.Httpbench.r_responses <> r.Httpbench.r_requests then
    failwith "http: not every request got a 200"

let http () =
  section_header "HTTP: event-driven vs thread-per-connection at equal memory (oskit_asyncio)";
  http_header ();
  let rows =
    List.concat_map
      (fun config ->
        List.concat_map
          (fun clients ->
            List.map
              (fun mode ->
                let r = Httpbench.run ~config ~mode ~clients () in
                http_row r;
                http_check r;
                r)
              [ Httpbench.Threads; Httpbench.Reactor ])
          [ 1; 4; 16; 64; 256 ])
      [ Httpbench.Freebsd_com; Httpbench.Linux_com ]
  in
  print_newline ();
  List.iter
    (fun config ->
      let at mode =
        List.find
          (fun r ->
            r.Httpbench.r_config = config && r.Httpbench.r_mode = mode
            && r.Httpbench.r_clients = 256)
          rows
      in
      let re = at Httpbench.Reactor and th = at Httpbench.Threads in
      Printf.printf
        "%s @256 clients: reactor held %d concurrent connections vs %d threaded\n\
        \  (%.1fx at the same %dKB budget); reactor %.0f req/s vs threaded %.0f\n"
        (Httpbench.config_name config) re.Httpbench.r_peak_active
        th.Httpbench.r_peak_active
        (float_of_int re.Httpbench.r_peak_active
        /. float_of_int (max 1 th.Httpbench.r_peak_active))
        (Httpbench.ram_budget / 1024) re.Httpbench.r_rps th.Httpbench.r_rps;
      if re.Httpbench.r_peak_active < 4 * th.Httpbench.r_peak_active then
        failwith "http: reactor sustained < 4x the threaded concurrency")
    [ Httpbench.Freebsd_com; Httpbench.Linux_com ];
  print_endline "\nsame server component, same COM interfaces, both stacks; the threaded";
  print_endline "shape hits its memory cap and the listen backlog does the dropping";
  write_json "BENCH_http.json" "rows"
    [ json_str "bench" "http"; json_int "file_bytes" Httpbench.file_bytes;
      json_int "ram_budget" Httpbench.ram_budget;
      json_int "max_threads" Httpbench.max_threads;
      json_int "max_conns" Httpbench.max_conns;
      json_int "backlog" Httpbench.backlog; json_str "unit" "req/s" ]
    (List.map
       (fun r ->
         json_obj
           [ json_str "stack" (Httpbench.config_name r.Httpbench.r_config);
             json_str "mode" (Httpbench.mode_name r.Httpbench.r_mode);
             json_int "clients" r.Httpbench.r_clients;
             json_int "requests" r.Httpbench.r_requests;
             json_float "duration_ms" r.Httpbench.r_duration_ms;
             json_float "rps" r.Httpbench.r_rps;
             json_float "p50_us" r.Httpbench.r_p50_us;
             json_float "p99_us" r.Httpbench.r_p99_us;
             json_int "peak_active" r.Httpbench.r_peak_active;
             json_int "accepted" r.Httpbench.r_accepted;
             json_int "responses" r.Httpbench.r_responses;
             json_int "shed" r.Httpbench.r_shed;
             json_int "listen_overflow" r.Httpbench.r_listen_overflow;
             json_int "protocol_errors" r.Httpbench.r_protocol_errors;
             json_int "mismatches" r.Httpbench.r_mismatches;
             json_int "reactor_sleeps" r.Httpbench.r_reactor_sleeps;
             json_int "reactor_spurious" r.Httpbench.r_reactor_spurious ])
       rows)

(* ---------------- smp: multi-CPU scale-out ---------------- *)

let smp_header () =
  Printf.printf "%-6s %8s %10s %10s %10s %8s %8s %8s %6s  %s\n%!" "ncpus"
    "clients" "req/s" "p50 (us)" "p99 (us)" "hw-rss" "netisr" "drops" "spins"
    "cpu share"

let smp_row r =
  Printf.printf "%-6d %8d %10.0f %10.1f %10.1f %8d %8d %8d %6d  [%s]\n%!"
    r.Smpbench.r_ncpus r.Smpbench.r_clients r.Smpbench.r_rps r.Smpbench.r_p50_us
    r.Smpbench.r_p99_us r.Smpbench.r_rss_steered r.Smpbench.r_netisr_queued
    r.Smpbench.r_netisr_drops r.Smpbench.r_spin_contentions
    (String.concat " "
       (Array.to_list
          (Array.map (fun f -> Printf.sprintf "%.2f" f) r.Smpbench.r_cpu_share)))

let smp_check r =
  if r.Smpbench.r_mismatches > 0 then
    failwith "smp: response was not byte-exact";
  if r.Smpbench.r_responses <> r.Smpbench.r_requests then
    failwith "smp: not every request got a 200";
  if r.Smpbench.r_spin_contentions > 0 then
    failwith "smp: spinlock contention on the per-flow hot path";
  if r.Smpbench.r_netisr_drops > 0 then failwith "smp: netisr queue overflowed"

let smp_speedup rows ~clients ~ncpus =
  let at n =
    List.find
      (fun r -> r.Smpbench.r_ncpus = n && r.Smpbench.r_clients = clients)
      rows
  in
  (at ncpus).Smpbench.r_rps /. (at 1).Smpbench.r_rps

let smp () =
  section_header
    "SMP: netisr-sharded reactor httpd, RSS flow steering (req/s vs CPUs)";
  smp_header ();
  let rows =
    List.concat_map
      (fun clients ->
        List.map
          (fun ncpus ->
            let r = Smpbench.run ~ncpus ~clients () in
            smp_row r;
            smp_check r;
            r)
          [ 1; 2; 4; 8 ])
      [ 256; 1024; 2048 ]
  in
  print_newline ();
  List.iter
    (fun clients ->
      Printf.printf "@%d clients: 2 CPUs %.2fx, 4 CPUs %.2fx, 8 CPUs %.2fx\n"
        clients
        (smp_speedup rows ~clients ~ncpus:2)
        (smp_speedup rows ~clients ~ncpus:4)
        (smp_speedup rows ~clients ~ncpus:8))
    [ 256; 1024; 2048 ];
  List.iter
    (fun clients ->
      if smp_speedup rows ~clients ~ncpus:4 < 3.0 then
        failwith
          (Printf.sprintf "smp: 4-CPU speedup under 3x at %d clients" clients))
    [ 1024; 2048 ];
  print_endline "\nsame payload bytes at every width; flows pinned to their RSS";
  print_endline "home CPU, the listen socket accepting on CPU 0";
  write_json "BENCH_smp.json" "rows"
    [ json_str "bench" "smp"; json_int "file_bytes" Smpbench.file_bytes;
      json_int "backlog" Smpbench.backlog; json_str "unit" "req/s" ]
    (List.map
       (fun r ->
         json_obj
           ([ json_int "ncpus" r.Smpbench.r_ncpus;
              json_int "clients" r.Smpbench.r_clients;
              json_int "requests" r.Smpbench.r_requests;
              json_float "duration_ms" r.Smpbench.r_duration_ms;
              json_float "rps" r.Smpbench.r_rps;
              json_float "p50_us" r.Smpbench.r_p50_us;
              json_float "p99_us" r.Smpbench.r_p99_us;
              json_int "responses" r.Smpbench.r_responses;
              json_int "mismatches" r.Smpbench.r_mismatches;
              json_int "rss_steered" r.Smpbench.r_rss_steered;
              json_int "netisr_queued" r.Smpbench.r_netisr_queued;
              json_int "netisr_drops" r.Smpbench.r_netisr_drops;
              json_int "spin_contentions" r.Smpbench.r_spin_contentions ]
           @ Array.to_list
               (Array.mapi
                  (fun i f -> json_float (Printf.sprintf "cpu%d_share" i) f)
                  r.Smpbench.r_cpu_share)))
       rows)

(* ---------------- smpsmoke: CI gate for SMP sharding ---------------- *)

let smpsmoke () =
  section_header "SMP smoke: 256-client sharding gates (fails loudly on regression)";
  smp_header ();
  let r1 = Smpbench.run ~ncpus:1 ~clients:256 () in
  smp_row r1;
  smp_check r1;
  let r4 = Smpbench.run ~ncpus:4 ~clients:256 () in
  smp_row r4;
  smp_check r4;
  if r4.Smpbench.r_rps <= r1.Smpbench.r_rps then
    failwith "smpsmoke: 4 CPUs not faster than 1";
  if r4.Smpbench.r_rss_steered + r4.Smpbench.r_netisr_queued = 0 then
    failwith "smpsmoke: no frames were ever steered (sharding inert?)";
  print_endline "byte-exact at both widths; 4-CPU req/s strictly higher; hot path lock-free"

(* ---------------- httpsmoke: CI gate for the asyncio path ---------------- *)

let httpsmoke () =
  section_header "HTTP smoke: 64 concurrent clients, both stacks, both serving shapes";
  http_header ();
  List.iter
    (fun config ->
      let run mode = Httpbench.run ~config ~mode ~clients:64 () in
      let th = run Httpbench.Threads in
      http_row th;
      let re = run Httpbench.Reactor in
      http_row re;
      http_check th;
      http_check re;
      if re.Httpbench.r_rps < th.Httpbench.r_rps then
        failwith "httpsmoke: reactor slower than thread-per-connection")
    [ Httpbench.Freebsd_com; Httpbench.Linux_com ];
  print_endline "\nzero protocol errors, every response byte-exact, reactor >= threaded req/s"

(* ---------------- rttsmoke: CI gate for the receive fast path ---------------- *)

let rttsmoke () =
  section_header "RTT smoke: receive fast path gates (fails loudly on regression)";
  (* 1) equivalence: everything on, ttcp clean and under netem loss must
     deliver the position-dependent payload byte-exactly. *)
  List.iter
    (fun (sender, loss) ->
      let r =
        fast_flags true (fun () ->
            Netbench.chaos_transfer ~seed:42 ~loss ~sender ~receiver:Netbench.Freebsd
              ~blocks ~blocksize ())
      in
      Printf.printf "fastpath ttcp %-8s loss %4.1f%%: %8.2f Mbit/s, byte-exact %s\n%!"
        (Netbench.config_name sender) (loss *. 100.0) r.Netbench.goodput_mbit
        (if r.Netbench.byte_exact then "yes" else "NO");
      if not r.Netbench.byte_exact then
        failwith "rttsmoke: fast path broke byte-exactness")
    [ Netbench.Oskit, 0.0; Netbench.Oskit, 0.01;
      Netbench.Linux, 0.0; Netbench.Linux, 0.01 ];
  (* 2) the win, with the machinery provably engaged: strictly lower mean
     RTT; prediction hits and pcb-cache hits nonzero; zero fallbacks on a
     clean in-order run (every established-state segment must predict). *)
  let dflt = Netbench.dist ~fastpath:false Netbench.Oskit ~trips:100 in
  let fast = Netbench.dist ~fastpath:true Netbench.Oskit ~trips:100 in
  Printf.printf
    "rtcp OSKit: mean %.1f us default, %.1f us fast\n\
    \  (prediction hits %d, fallbacks %d, pcb-cache hits %d / misses %d)\n%!"
    dflt.Netbench.rtt_mean_us fast.Netbench.rtt_mean_us fast.Netbench.rtt_fastpath_hits
    fast.Netbench.rtt_fastpath_fallbacks fast.Netbench.rtt_pcb_cache_hits
    fast.Netbench.rtt_pcb_cache_misses;
  if dflt.Netbench.rtt_fastpath_hits <> 0 then
    failwith "rttsmoke: default run took the fast path (flag gating broken)";
  if fast.Netbench.rtt_mean_us >= dflt.Netbench.rtt_mean_us then
    failwith "rttsmoke: fast path did not reduce mean RTT";
  if fast.Netbench.rtt_fastpath_hits = 0 then
    failwith "rttsmoke: zero header-prediction hits";
  if fast.Netbench.rtt_fastpath_fallbacks <> 0 then
    failwith "rttsmoke: prediction fallbacks on a clean in-order run";
  if fast.Netbench.rtt_pcb_cache_hits = 0 then failwith "rttsmoke: zero pcb-cache hits";
  (* 3) batching: a 128-client connect burst against the OSKit config must
     coalesce frames — more than one frame per glue crossing on average. *)
  let r =
    fast_flags true (fun () ->
        Httpbench.run ~config:Httpbench.Oskit_com ~mode:Httpbench.Reactor ~clients:128 ())
  in
  http_check r;
  let polls = Cost.counters.Cost.rx_polls in
  let frames = Cost.counters.Cost.rx_batched_frames in
  Printf.printf "http 128 clients (OSKit, reactor): %d frames over %d polls (%.2f frames/poll)\n%!"
    frames polls
    (float_of_int frames /. float_of_int (max 1 polls));
  if polls = 0 then failwith "rttsmoke: batched receive path never polled";
  if frames <= polls then failwith "rttsmoke: mean frames per poll not > 1";
  print_endline "\nbyte-exact with everything on; RTT strictly lower; batching engaged"

(* ---------------- longfat: RTT x loss with scaled windows ---------------- *)

let longfat_modes =
  [ "default", Netbench.Lf_default;
    "manual-bdp", Netbench.Lf_manual;
    "autotune", Netbench.Lf_autotune ]

(* Enough bytes to amortize slow start at the given BDP; lossy cells get a
   smaller transfer (the Linux receiver keeps no out-of-order queue, so
   each loss replays go-back-N at one frame per RTT — see DESIGN.md). *)
let longfat_bytes ~rtt_ns ~loss =
  let bdp = rtt_ns / 80 in
  if loss = 0.0 then max (2 * 1024 * 1024) (25 * bdp)
  else max (1024 * 1024) (4 * bdp)

let longfat () =
  section_header
    "Longfat: ttcp over stretched wires (wscale + NewReno + buffer autotuning)";
  print_endline
    "default = seed config (16-bit windows, fixed buffers); manual-bdp =\n\
     wscale on, both ends hand-sized to 2x BDP; autotune = wscale on, the\n\
     stacks grow their own buffers.  100 Mbps wire, netem seed 42.\n";
  Printf.printf "%-8s %7s %6s %-11s %10s %9s %10s %11s\n" "stack" "rtt" "loss"
    "buffers" "Mbit/s" "rexmits" "rcv buf" "byte-exact";
  let rows =
    List.concat_map
      (fun config ->
        List.concat_map
          (fun rtt_ms ->
            let rtt_ns = int_of_float (rtt_ms *. 1e6) in
            List.concat_map
              (fun loss ->
                List.map
                  (fun (mode_name, bufmode) ->
                    let bytes = longfat_bytes ~rtt_ns ~loss in
                    let r =
                      Netbench.longfat_transfer ~seed:42 ~loss ~config ~rtt_ns
                        ~bufmode ~bytes ()
                    in
                    Printf.printf "%-8s %5.1fms %5.1f%% %-11s %10.2f %9d %10d %11s\n%!"
                      (Netbench.config_name config) rtt_ms (loss *. 100.0)
                      mode_name r.Netbench.lf_mbit r.Netbench.lf_rexmits
                      r.Netbench.lf_rcv_buf
                      (if r.Netbench.lf_byte_exact then "yes" else "NO");
                    if not r.Netbench.lf_byte_exact then
                      failwith "longfat: transfer was not byte-exact";
                    config, rtt_ms, loss, mode_name, bytes, r)
                  longfat_modes)
              [ 0.0; 0.01; 0.03 ])
          [ 0.1; 1.0; 10.0; 50.0 ])
      [ Netbench.Freebsd; Netbench.Linux ]
  in
  (* The tentpole claims, asserted at generation time so the committed
     JSON can't drift from them: at 50 ms / 0% loss, scaled windows buy
     >= 5x the seed throughput, and autotuning lands within 10% of the
     hand-sized buffers — in both stacks. *)
  let cell config mode =
    let _, _, _, _, _, r =
      List.find
        (fun (c, rtt, loss, m, _, _) ->
          c = config && rtt = 50.0 && loss = 0.0 && m = mode)
        rows
    in
    r.Netbench.lf_mbit
  in
  List.iter
    (fun config ->
      let dflt = cell config "default" in
      let manual = cell config "manual-bdp" in
      let auto = cell config "autotune" in
      Printf.printf
        "\n%s @50ms/0%%: default %.2f, manual-bdp %.2f (%.1fx), autotune %.2f (%.0f%% of manual)\n"
        (Netbench.config_name config) dflt manual (manual /. dflt) auto
        (100.0 *. auto /. manual);
      if manual < 5.0 *. dflt then
        failwith "longfat: scaled windows under 5x the seed throughput at 50ms";
      if auto < 0.9 *. manual then
        failwith "longfat: autotuned throughput under 90% of manual BDP sizing")
    [ Netbench.Freebsd; Netbench.Linux ];
  write_json "BENCH_longfat.json" "rows"
    [ json_str "bench" "longfat"; json_str "unit" "Mbit/s";
      json_int "wire_mbit" 100; json_int "seed" 42 ]
    (List.map
       (fun (config, rtt_ms, loss, mode_name, bytes, r) ->
         json_obj
           [ json_str "system" (Netbench.config_name config);
             json_float "rtt_ms" rtt_ms;
             json_float "loss" loss;
             json_str "buffers" mode_name;
             json_int "bytes" bytes;
             json_float "mbit" r.Netbench.lf_mbit;
             json_int "rexmits" r.Netbench.lf_rexmits;
             json_int "rcv_buf" r.Netbench.lf_rcv_buf;
             json_str "byte_exact" (if r.Netbench.lf_byte_exact then "yes" else "no") ])
       rows)

(* ---------------- longfatsmoke: CI gate for long-fat-pipe TCP ---------------- *)

let longfatsmoke () =
  section_header "Longfat smoke: wscale/NewReno/autotune gates (fails loudly on regression)";
  (* 1) byte-exactness with everything on, under loss, at WAN RTT — both
     stacks exercise wscale negotiation, dup-ACK recovery, and autotuning. *)
  List.iter
    (fun config ->
      let r =
        Netbench.longfat_transfer ~seed:42 ~loss:0.01 ~config
          ~rtt_ns:10_000_000 ~bufmode:Netbench.Lf_autotune
          ~bytes:(1024 * 1024) ()
      in
      Printf.printf "%-8s 10ms 1%% autotune: %8.2f Mbit/s, %d rexmits, byte-exact %s\n%!"
        (Netbench.config_name config) r.Netbench.lf_mbit r.Netbench.lf_rexmits
        (if r.Netbench.lf_byte_exact then "yes" else "NO");
      if not r.Netbench.lf_byte_exact then
        failwith "longfatsmoke: lossy scaled-window transfer not byte-exact";
      if r.Netbench.lf_rexmits = 0 then
        failwith "longfatsmoke: netem loss produced no retransmissions")
    [ Netbench.Freebsd; Netbench.Linux ];
  (* 2) autotuning holds its own against hand-sized buffers at 50 ms. *)
  List.iter
    (fun config ->
      let run bufmode =
        Netbench.longfat_transfer ~seed:42 ~loss:0.0 ~config ~rtt_ns:50_000_000
          ~bufmode ~bytes:(8 * 1024 * 1024) ()
      in
      let dflt = run Netbench.Lf_default in
      let manual = run Netbench.Lf_manual in
      let auto = run Netbench.Lf_autotune in
      Printf.printf
        "%-8s 50ms 0%%: default %.2f, manual %.2f, autotune %.2f Mbit/s (buf %d)\n%!"
        (Netbench.config_name config) dflt.Netbench.lf_mbit manual.Netbench.lf_mbit
        auto.Netbench.lf_mbit auto.Netbench.lf_rcv_buf;
      if manual.Netbench.lf_mbit < 5.0 *. dflt.Netbench.lf_mbit then
        failwith "longfatsmoke: scaled windows under 5x the seed throughput";
      if auto.Netbench.lf_mbit < 0.9 *. manual.Netbench.lf_mbit then
        failwith "longfatsmoke: autotune under 90% of manual BDP buffers";
      if auto.Netbench.lf_rcv_buf <= 64 * 1024 then
        failwith "longfatsmoke: autotune never grew the receive buffer")
    [ Netbench.Freebsd; Netbench.Linux ];
  (* 3) the persist timer probes through a forced zero-window stall. *)
  let probes, exact = Netbench.zero_window_run () in
  Printf.printf "zero-window stall: %d persist probes, byte-exact %s\n%!" probes
    (if exact then "yes" else "NO");
  if probes = 0 then failwith "longfatsmoke: persist timer never probed";
  if not exact then failwith "longfatsmoke: zero-window run not byte-exact";
  print_endline
    "\nbyte-exact under loss; >=5x at 50ms; autotune >= 90% of manual; probes fire"

(* ---------------- overload: survival under deliberate abuse ---------------- *)

(* A 10x SYN flood (40 spoofed SYNs against a depth-4 backlog), an
   allocation-failure soak, and a Slowloris mix — each with its defense
   off and on.  The headline number is the goodput the LEGITIMATE
   clients still see; the defenses are all Cost.config knobs that
   default off, so the Table 1/2/rtt baselines are untouched. *)

let overload_flood_syns = 40 (* 10x the listen backlog of 4 *)
let overload_legit = 4
let overload_bytes_per_client = 65536
let overload_soak_bytes = 262144

let overload_servers = [ Overloadbench.Sv_freebsd; Overloadbench.Sv_linux ]

let overload_flood_matrix () =
  List.concat_map
    (fun server ->
      List.concat_map
        (fun defense ->
          List.map
            (fun flood ->
              Overloadbench.flood_run ~server ~defense ~flood
                ~legit:overload_legit ~bytes_per_client:overload_bytes_per_client
                ())
            [ 0; overload_flood_syns ])
        [ false; true ])
    overload_servers

let overload_alloc_matrix () =
  List.concat_map
    (fun server ->
      List.map
        (fun (prob, seed) ->
          Overloadbench.alloc_run ~server ~prob ~seed ~bytes:overload_soak_bytes ())
        [ (0.0, 42); (0.001, 42); (0.01, 43) ])
    overload_servers

let overload_loris_matrix () =
  List.map (fun guard -> Overloadbench.loris_run ~guard ~loris:8 ~legit:4 ()) [ false; true ]

let overload () =
  section_header "overload: SYN flood x alloc failure x Slowloris";
  let floods = overload_flood_matrix () in
  Printf.printf "%-8s %-8s %6s %12s %10s %8s %10s %9s\n" "server" "defense"
    "flood" "legit-served" "goodput" "cache" "completed" "overflow";
  List.iter
    (fun r ->
      Printf.printf "%-8s %-8s %6d %8d/%-3d %7.1f Mb %8d %10d %9d\n"
        (Overloadbench.server_name r.Overloadbench.fl_server)
        (if r.Overloadbench.fl_defense then "on" else "off")
        r.Overloadbench.fl_flood r.Overloadbench.fl_served
        r.Overloadbench.fl_legit r.Overloadbench.fl_goodput_mbit
        r.Overloadbench.fl_syncache_added r.Overloadbench.fl_completed
        r.Overloadbench.fl_listen_overflow)
    floods;
  let allocs = overload_alloc_matrix () in
  Printf.printf "\n%-8s %6s %10s %10s %8s %9s %6s\n" "server" "prob" "goodput"
    "byte-exact" "draws" "failures" "drops";
  List.iter
    (fun r ->
      Printf.printf "%-8s %6.3f %7.1f Mb %10s %8d %9d %6d\n"
        (Overloadbench.server_name r.Overloadbench.al_server)
        r.Overloadbench.al_prob r.Overloadbench.al_goodput_mbit
        (if r.Overloadbench.al_byte_exact then "yes" else "NO")
        r.Overloadbench.al_draws r.Overloadbench.al_failures
        r.Overloadbench.al_nomem_drops)
    allocs;
  let lorises = overload_loris_matrix () in
  Printf.printf "\n%-6s %6s %13s %15s %5s %11s\n" "guard" "loris" "legit-served"
    "deadline-cuts" "shed" "peak-active";
  List.iter
    (fun r ->
      Printf.printf "%-6s %6d %9d/%-3d %15d %5d %11d\n"
        (if r.Overloadbench.lo_guard then "on" else "off")
        r.Overloadbench.lo_loris r.Overloadbench.lo_served
        r.Overloadbench.lo_legit r.Overloadbench.lo_deadline_closed
        r.Overloadbench.lo_shed r.Overloadbench.lo_peak_active)
    lorises;
  write_json "BENCH_overload.json" "rows"
    [ json_str "bench" "overload"; json_int "flood_syns" overload_flood_syns;
      json_int "legit_clients" overload_legit;
      json_int "bytes_per_client" overload_bytes_per_client;
      json_int "soak_bytes" overload_soak_bytes; json_str "unit" "Mbit/s" ]
    (List.map
       (fun r ->
         json_obj
           [ json_str "kind" "flood";
             json_str "server" (Overloadbench.server_name r.Overloadbench.fl_server);
             json_str "defense" (if r.Overloadbench.fl_defense then "on" else "off");
             json_int "flood_syns" r.Overloadbench.fl_flood;
             json_int "legit" r.Overloadbench.fl_legit;
             json_int "served" r.Overloadbench.fl_served;
             json_int "bytes" r.Overloadbench.fl_bytes;
             json_float "goodput_mbit" r.Overloadbench.fl_goodput_mbit;
             json_int "syncache_added" r.Overloadbench.fl_syncache_added;
             json_int "handshakes_completed" r.Overloadbench.fl_completed;
             json_int "listen_overflow" r.Overloadbench.fl_listen_overflow ])
       floods
    @ List.map
        (fun r ->
          json_obj
            [ json_str "kind" "alloc";
              json_str "server" (Overloadbench.server_name r.Overloadbench.al_server);
              json_float "fail_prob" r.Overloadbench.al_prob;
              json_int "bytes" r.Overloadbench.al_bytes;
              json_str "byte_exact" (if r.Overloadbench.al_byte_exact then "yes" else "no");
              json_float "goodput_mbit" r.Overloadbench.al_goodput_mbit;
              json_int "draws" r.Overloadbench.al_draws;
              json_int "failures" r.Overloadbench.al_failures;
              json_int "nomem_drops" r.Overloadbench.al_nomem_drops ])
        allocs
    @ List.map
        (fun r ->
          json_obj
            [ json_str "kind" "loris";
              json_str "guard" (if r.Overloadbench.lo_guard then "on" else "off");
              json_int "loris" r.Overloadbench.lo_loris;
              json_int "legit" r.Overloadbench.lo_legit;
              json_int "served" r.Overloadbench.lo_served;
              json_int "deadline_closed" r.Overloadbench.lo_deadline_closed;
              json_int "shed" r.Overloadbench.lo_shed;
              json_int "peak_active" r.Overloadbench.lo_peak_active ])
        lorises)

(* ---------------- overloadsmoke: CI gate for overload survival ---------------- *)

let overloadsmoke () =
  section_header "overloadsmoke: overload-survival CI gate";
  (* 1) with the defense on, a 10x SYN flood must leave every legitimate
     client served and goodput within 70% of the clean run. *)
  List.iter
    (fun server ->
      let name = Overloadbench.server_name server in
      let clean =
        Overloadbench.flood_run ~server ~defense:true ~flood:0
          ~legit:overload_legit ~bytes_per_client:overload_bytes_per_client ()
      in
      let flooded =
        Overloadbench.flood_run ~server ~defense:true ~flood:overload_flood_syns
          ~legit:overload_legit ~bytes_per_client:overload_bytes_per_client ()
      in
      let ratio =
        flooded.Overloadbench.fl_goodput_mbit /. clean.Overloadbench.fl_goodput_mbit
      in
      Printf.printf
        "%s defended: clean %.1f Mb, flooded %.1f Mb (ratio %.2f), served %d/%d\n%!"
        name clean.Overloadbench.fl_goodput_mbit flooded.Overloadbench.fl_goodput_mbit
        ratio flooded.Overloadbench.fl_served flooded.Overloadbench.fl_legit;
      if flooded.Overloadbench.fl_served < overload_legit then
        failwith (Printf.sprintf "overloadsmoke: %s dropped a legit client under flood" name);
      if ratio < 0.70 then
        failwith (Printf.sprintf "overloadsmoke: %s flooded goodput under 70%% of clean" name);
      if flooded.Overloadbench.fl_syncache_added < overload_flood_syns then
        failwith (Printf.sprintf "overloadsmoke: %s syncache missed flood SYNs" name))
    overload_servers;
  (* 2) a 1% allocation-failure soak must finish byte-exact with the
     injector demonstrably firing, and without a crash. *)
  List.iter
    (fun server ->
      let r =
        Overloadbench.alloc_run ~server ~prob:0.01 ~seed:43
          ~bytes:overload_soak_bytes ()
      in
      Printf.printf "%s 1%% soak: byte-exact %s, %d failures, %d drops\n%!"
        (Overloadbench.server_name r.Overloadbench.al_server)
        (if r.Overloadbench.al_byte_exact then "yes" else "NO")
        r.Overloadbench.al_failures r.Overloadbench.al_nomem_drops;
      if not r.Overloadbench.al_byte_exact then
        failwith "overloadsmoke: soak transfer not byte-exact";
      if r.Overloadbench.al_failures = 0 then
        failwith "overloadsmoke: soak injector never fired")
    overload_servers;
  (* 3) the guarded httpd reclaims Slowloris slots and serves the
     late-arriving legitimate clients. *)
  let r = Overloadbench.loris_run ~guard:true ~loris:8 ~legit:4 () in
  Printf.printf "guarded httpd: served %d/%d, %d deadline cuts\n%!"
    r.Overloadbench.lo_served r.Overloadbench.lo_legit
    r.Overloadbench.lo_deadline_closed;
  if r.Overloadbench.lo_served < r.Overloadbench.lo_legit then
    failwith "overloadsmoke: guarded httpd dropped a legit client";
  if r.Overloadbench.lo_deadline_closed = 0 then
    failwith "overloadsmoke: header deadline never fired";
  print_endline
    "\nflood goodput >= 70% of clean; soak byte-exact; Slowloris slots reclaimed"

(* ---------------- event: kqueue + timing-wheel complexity ---------------- *)

(* The event-core claim: per-pass dispatch work tracks the ready set and
   timer work tracks the due set, no matter how much idle state is
   registered.  Both sweeps hold the hot population fixed and grow the
   idle population three decades; the flat column is the result. *)
let event () =
  section_header "Event core: O(ready) dispatch, O(due) timers";
  Printf.printf
    "hot set fixed (%d ready watches / %d due timers), idle population sweeps\n\n"
    Eventbench.hot_set Eventbench.hot_set;
  Printf.printf "%-10s %14s %14s %12s\n" "idle" "scan visits" "kq visits" "dispatches";
  let krows =
    List.map
      (fun idle ->
        let r =
          Eventbench.kq_sweep ~idle ~hot:Eventbench.hot_set
            ~rounds:Eventbench.kq_rounds
        in
        Printf.printf "%-10d %14d %14d %12d\n" r.Eventbench.kr_idle
          r.Eventbench.kr_scan_visits r.Eventbench.kr_kq_visits
          r.Eventbench.kr_dispatches;
        r)
      Eventbench.idle_sweep
  in
  Printf.printf "\n%-10s %14s %10s %10s %14s\n" "idle" "wheel work" "fires"
    "cascades" "scan visits";
  let wrows =
    List.map
      (fun idle ->
        let r = Eventbench.wheel_run ~idle ~hot:Eventbench.hot_set in
        Printf.printf "%-10d %14d %10d %10d %14d\n" r.Eventbench.wr_idle
          r.Eventbench.wr_work r.Eventbench.wr_fires r.Eventbench.wr_cascades
          r.Eventbench.wr_scan_visits;
        if r.Eventbench.wr_early <> 0 || r.Eventbench.wr_late <> 0
           || r.Eventbench.wr_missed <> 0
        then
          failwith
            (Printf.sprintf "event: timing contract broken (early %d late %d missed %d)"
               r.Eventbench.wr_early r.Eventbench.wr_late r.Eventbench.wr_missed);
        r)
      Eventbench.idle_sweep
  in
  print_endline "\n(timing contract held: no early fires, none > 1 granule late)";
  write_json "BENCH_event.json" "rows"
    [ json_str "bench" "event";
      json_int "hot" Eventbench.hot_set;
      json_int "kq_rounds" Eventbench.kq_rounds;
      json_int "wheel_ticks" Eventbench.wheel_window_ticks ]
    (List.map
       (fun (r : Eventbench.kq_row) ->
         json_obj
           [ json_str "kind" "kqueue";
             json_int "idle" r.Eventbench.kr_idle;
             json_int "scan_visits" r.Eventbench.kr_scan_visits;
             json_int "kq_visits" r.Eventbench.kr_kq_visits;
             json_int "dispatches" r.Eventbench.kr_dispatches ])
       krows
    @ List.map
        (fun (r : Eventbench.wheel_row) ->
          json_obj
            [ json_str "kind" "wheel";
              json_int "idle" r.Eventbench.wr_idle;
              json_int "work" r.Eventbench.wr_work;
              json_int "fires" r.Eventbench.wr_fires;
              json_int "cascades" r.Eventbench.wr_cascades;
              json_int "scan_visits" r.Eventbench.wr_scan_visits ])
        wrows)

let eventsmoke () =
  section_header "event CI gate";
  (* 1) dispatch work must not grow with the idle population. *)
  let a = Eventbench.kq_sweep ~idle:100 ~hot:128 ~rounds:10 in
  let b = Eventbench.kq_sweep ~idle:10_000 ~hot:128 ~rounds:10 in
  if b.Eventbench.kr_kq_visits <> a.Eventbench.kr_kq_visits then
    failwith "eventsmoke: kq visits grew with idle watches";
  if b.Eventbench.kr_scan_visits < 10 * b.Eventbench.kr_kq_visits then
    failwith "eventsmoke: scan strawman implausibly cheap (harness broken?)";
  Printf.printf "kq visits flat at %d as idle grows 100 -> 10000 (scan: %d -> %d)\n"
    b.Eventbench.kr_kq_visits a.Eventbench.kr_scan_visits
    b.Eventbench.kr_scan_visits;
  (* 2) wheel timing contract: zero missed, zero early, <= 1 granule late;
     and wheel work must stay two orders below the every-tick scan. *)
  let w = Eventbench.wheel_run ~idle:10_000 ~hot:128 in
  if w.Eventbench.wr_early <> 0 || w.Eventbench.wr_late <> 0
     || w.Eventbench.wr_missed <> 0
  then
    failwith
      (Printf.sprintf "eventsmoke: timing contract broken (early %d late %d missed %d)"
         w.Eventbench.wr_early w.Eventbench.wr_late w.Eventbench.wr_missed);
  if w.Eventbench.wr_work >= w.Eventbench.wr_scan_visits / 100 then
    failwith "eventsmoke: wheel work not O(due)";
  Printf.printf "wheel: %d fires on time, work %d vs scan %d\n" w.Eventbench.wr_fires
    w.Eventbench.wr_work w.Eventbench.wr_scan_visits;
  (* 3) full stack with both flags on: the served bytes must be exact. *)
  let saved_kq = Cost.config.Cost.kq
  and saved_tw = Cost.config.Cost.timer_wheel in
  Cost.config.Cost.kq <- true;
  Cost.config.Cost.timer_wheel <- true;
  Fun.protect
    ~finally:(fun () ->
      Cost.config.Cost.kq <- saved_kq;
      Cost.config.Cost.timer_wheel <- saved_tw)
  @@ fun () ->
  let r =
    Httpbench.run ~config:Httpbench.Oskit_com ~mode:Httpbench.Reactor ~clients:64 ()
  in
  if r.Httpbench.r_mismatches <> 0 then
    failwith "eventsmoke: byte mismatch with kq+wheel on";
  if r.Httpbench.r_responses <> r.Httpbench.r_requests then
    failwith
      (Printf.sprintf "eventsmoke: %d/%d responses with kq+wheel on"
         r.Httpbench.r_responses r.Httpbench.r_requests);
  Printf.printf "httpd with kq+timer_wheel: %d/%d responses, all byte-exact\n"
    r.Httpbench.r_responses r.Httpbench.r_requests;
  print_endline "\nflat O(ready) dispatch; wheel contract exact; kq+wheel httpd byte-exact"

(* ---------------- file: the keep-alive + sendfile content path ---------------- *)

let file_header () =
  Printf.printf "%-8s %-8s %-14s %6s %7s %6s %8s %10s %9s %9s %8s %8s %6s\n%!"
    "stack" "mode" "knobs" "files" "fbytes" "reqs" "req/s" "copied/req" "sf-bodies"
    "fallback" "bc-hit" "bc-miss" "bad"

let file_row (r : Filebench.result) =
  Printf.printf "%-8s %-8s %-14s %6d %7d %6d %8.0f %10.1f %9d %9d %8d %8d %6d\n%!"
    (Filebench.config_name r.Filebench.r_config)
    (Filebench.mode_name r.Filebench.r_mode)
    (Filebench.knobs_name r.Filebench.r_knobs
    ^ if r.Filebench.r_pipeline > 1 then Printf.sprintf "+p%d" r.Filebench.r_pipeline
      else "")
    r.Filebench.r_files r.Filebench.r_file_bytes r.Filebench.r_requests
    r.Filebench.r_rps r.Filebench.r_copied_per_req r.Filebench.r_sendfile_bodies
    r.Filebench.r_sendfile_fallbacks r.Filebench.r_bufcache_hits
    r.Filebench.r_bufcache_misses
    (r.Filebench.r_mismatches + r.Filebench.r_protocol_errors)

let file_check (r : Filebench.result) =
  if r.Filebench.r_mismatches > 0 then
    failwith "file: response was not byte-exact";
  if r.Filebench.r_protocol_errors > 0 then failwith "file: protocol errors";
  if r.Filebench.r_responses < r.Filebench.r_requests then
    failwith "file: not every request got a 200"

let file_json_row (r : Filebench.result) =
  json_obj
    [ json_str "stack" (Filebench.config_name r.Filebench.r_config);
      json_str "mode" (Filebench.mode_name r.Filebench.r_mode);
      json_str "knobs" (Filebench.knobs_name r.Filebench.r_knobs);
      json_int "clients" r.Filebench.r_clients;
      json_int "pipeline" r.Filebench.r_pipeline;
      json_int "requests" r.Filebench.r_requests;
      json_int "files" r.Filebench.r_files;
      json_int "file_bytes" r.Filebench.r_file_bytes;
      json_float "duration_ms" r.Filebench.r_duration_ms;
      json_float "rps" r.Filebench.r_rps;
      json_int "responses" r.Filebench.r_responses;
      json_int "reused" r.Filebench.r_reused;
      json_int "pipelined" r.Filebench.r_pipelined;
      json_int "idle_closed" r.Filebench.r_idle_closed;
      json_int "capped" r.Filebench.r_capped;
      json_int "accepted" r.Filebench.r_accepted;
      json_int "sendfile_bodies" r.Filebench.r_sendfile_bodies;
      json_int "sendfile_fallbacks" r.Filebench.r_sendfile_fallbacks;
      json_int "body_bytes_copied" r.Filebench.r_body_bytes_copied;
      json_float "copied_per_req" r.Filebench.r_copied_per_req;
      json_int "bufcache_hits" r.Filebench.r_bufcache_hits;
      json_int "bufcache_misses" r.Filebench.r_bufcache_misses;
      json_int "protocol_errors" r.Filebench.r_protocol_errors;
      json_int "mismatches" r.Filebench.r_mismatches ]

let file () =
  section_header
    "FILE: HTTP/1.1 keep-alive + sendfile content path (req/s, body copies/request)";
  file_header ();
  let cell ?(config = Filebench.Freebsd_com) ?(mode = Filebench.Reactor)
      ?(clients = 16) ?(reqs = 125) ?(files = 16) ?(file_bytes = 4096)
      ?(pipeline = 1) knobs =
    let r =
      Filebench.run ~config ~mode ~knobs ~pipeline ~clients ~reqs_per_client:reqs
        ~files ~file_bytes ()
    in
    file_row r;
    file_check r;
    r
  in
  (* The knob matrix: both stacks (plus the OSKit glue shape), both
     serving shapes, all three knob sets, 2000 requests per cell on the
     small (in-cache) working set. *)
  let matrix =
    List.concat_map
      (fun config ->
        List.concat_map
          (fun mode ->
            List.map
              (fun knobs -> cell ~config ~mode knobs)
              [ Filebench.http10; Filebench.keepalive; Filebench.ka_sendfile ])
          [ Filebench.Reactor; Filebench.Threads ])
      [ Filebench.Freebsd_com; Filebench.Linux_com; Filebench.Oskit_com ]
  in
  (* Working set larger than the 64-block cache: eviction under load. *)
  print_newline ();
  let thrash =
    List.map
      (fun knobs -> cell ~files:128 knobs)
      [ Filebench.keepalive; Filebench.ka_sendfile ]
  in
  (* Body-size sweep: the copy path scales linearly with the body, the
     warm sendfile path stays at zero copied bytes per request. *)
  print_newline ();
  let sweep =
    List.concat_map
      (fun file_bytes ->
        List.map
          (fun knobs -> cell ~files:4 ~reqs:63 ~file_bytes knobs)
          [ Filebench.keepalive; Filebench.ka_sendfile ])
      [ 1024; 4096; 16384; 65536 ]
  in
  (* Headline scale: 10k requests over reused connections vs 10k fresh
     connections, FreeBSD reactor, on the small-object workload (1 KB —
     the median web object of the period) where connect/teardown is the
     dominant per-request cost.  The reused-connection rows run both
     serial (depth 1) and pipelined (depth 8, the server's parse-ahead
     bound): pipelining is where persistent connections stop paying a
     per-request round trip, so the headline ratio is depth 8. *)
  print_newline ();
  let scale =
    cell ~clients:16 ~reqs:625 ~file_bytes:1024 Filebench.http10
    :: List.concat_map
         (fun knobs ->
           [ cell ~clients:16 ~reqs:625 ~file_bytes:1024 knobs;
             cell ~clients:16 ~reqs:625 ~file_bytes:1024 ~pipeline:8 knobs ])
         [ Filebench.keepalive; Filebench.ka_sendfile ]
  in
  let rps k p =
    (List.find
       (fun r -> r.Filebench.r_knobs = k && r.Filebench.r_pipeline = p)
       scale)
      .Filebench.r_rps
  in
  Printf.printf
    "\n@10k requests (FreeBSD reactor): close-per-request %.0f req/s; keep-alive %.0f (%.1fx), pipelined x8 %.0f (%.1fx); +sendfile pipelined %.0f (%.1fx)\n"
    (rps Filebench.http10 1)
    (rps Filebench.keepalive 1)
    (rps Filebench.keepalive 1 /. rps Filebench.http10 1)
    (rps Filebench.keepalive 8)
    (rps Filebench.keepalive 8 /. rps Filebench.http10 1)
    (rps Filebench.ka_sendfile 8)
    (rps Filebench.ka_sendfile 8 /. rps Filebench.http10 1);
  if rps Filebench.ka_sendfile 8 < 3.0 *. rps Filebench.http10 1 then
    failwith
      "file: keep-alive+sendfile pipelined under 3x close-per-request at 10k requests";
  List.iter
    (fun r ->
      if r.Filebench.r_knobs = Filebench.ka_sendfile
         && r.Filebench.r_config <> Filebench.Linux_com
         && r.Filebench.r_body_bytes_copied <> 0
      then failwith "file: warm sendfile run copied body bytes")
    (matrix @ sweep @ scale);
  print_endline "\nLinux rows under ka+sendfile show the counted copy fallback: no sendv";
  print_endline "face on contiguous sk_buffs (Section 5's asymmetry at the app layer)";
  write_json "BENCH_file.json" "rows"
    [ json_str "bench" "file"; json_int "bufcache_blocks" 64;
      json_str "unit" "req/s" ]
    (List.map file_json_row (matrix @ thrash @ sweep @ scale))

(* ---------------- filesmoke: CI gate for the content path ---------------- *)

let filesmoke () =
  section_header "FILE smoke: keep-alive win, zero warm-cache copies, byte-exact";
  file_header ();
  let run ?(config = Filebench.Freebsd_com) ?(mode = Filebench.Reactor) knobs =
    let r =
      Filebench.run ~config ~mode ~knobs ~clients:64 ~reqs_per_client:4 ~files:16
        ~file_bytes:4096 ()
    in
    file_row r;
    file_check r;
    r
  in
  (* 1) keep-alive must beat close-per-request at 64 clients. *)
  let th10 = run Filebench.http10 in
  let ka = run Filebench.keepalive in
  if ka.Filebench.r_rps <= th10.Filebench.r_rps then
    failwith "filesmoke: keep-alive not faster than close-per-request";
  (* 2) warm-cache sendfile: zero body bytes copied, zero fallbacks. *)
  let sf = run Filebench.ka_sendfile in
  if sf.Filebench.r_body_bytes_copied <> 0 then
    failwith "filesmoke: sendfile path copied body bytes";
  if sf.Filebench.r_sendfile_fallbacks <> 0 then
    failwith "filesmoke: sendfile fell back on a mappable working set";
  if sf.Filebench.r_sendfile_bodies < sf.Filebench.r_requests then
    failwith "filesmoke: not every 200 went through the mapped path";
  (* 3) the threaded shape serves the same bytes. *)
  ignore (run ~mode:Filebench.Threads Filebench.ka_sendfile);
  (* 4) Linux: no sendv face, so the counted fallback must carry it. *)
  let lx = run ~config:Filebench.Linux_com Filebench.ka_sendfile in
  if lx.Filebench.r_sendfile_fallbacks = 0 || lx.Filebench.r_body_bytes_copied = 0
  then failwith "filesmoke: Linux fallback not counted";
  print_endline
    "\nkeep-alive > close-per-request; warm sendfile copies zero body bytes; all byte-exact"

(* ---------------- driver ---------------- *)

let sections =
  [ "table1", table1;
    "table2", table2;
    "table3", table3;
    "footprint", footprint;
    "vmnet", vmnet;
    "alloc", alloc;
    "glue", glue;
    "copies", copies;
    "chaos", chaos;
    "sgsmoke", sgsmoke;
    "rtt", rtt;
    "http", http;
    "httpsmoke", httpsmoke;
    "rttsmoke", rttsmoke;
    "longfat", longfat;
    "longfatsmoke", longfatsmoke;
    "overload", overload;
    "overloadsmoke", overloadsmoke;
    "smp", smp;
    "smpsmoke", smpsmoke;
    "event", event;
    "eventsmoke", eventsmoke;
    "file", file;
    "filesmoke", filesmoke ]

let () =
  let names =
    List.filter
      (function
        | "--sg" ->
            want_sg := true;
            false
        | "--json" ->
            want_json := true;
            false
        | _ -> true)
      (List.tl (Array.to_list Sys.argv))
  in
  let requested = match names with [] -> List.map fst sections | ns -> ns in
  print_endline "Flux OSKit reproduction — benchmark harness";
  Printf.printf "(virtual testbed: 2x 200MHz PCs, 100 Mbps Ethernet; %d-block runs)\n" blocks;
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None -> Printf.printf "unknown section %S\n" name)
    requested
