(* httpbench — the asyncio concurrency experiment: one HTTP/1.0 static-file
   server component (lib/httpd) run in its two serving shapes against a
   swarm of simultaneous clients, on either protocol stack.

   The server speaks to its sockets only through the COM interfaces
   (oskit_socket + oskit_asyncio), so the same component binary serves
   from the FreeBSD stack (Freebsd_glue.socket_com) or the Linux stack
   (Linux_sock_com.socket_com) — the separability argument of Section 4.4,
   extended to the readiness path.

   The comparison is at EQUAL MEMORY: a RAM budget is divided by what a
   connection costs in each shape (a parked handler thread owns a 32KB
   kernel stack; a reactor connection owns a 2KB state record), which caps
   thread-per-connection far below the event-driven server.  Beyond its
   cap the threaded server's accept queue backs up and the stack's listen
   backlog drops SYNs — the drops surface in the per-stack
   [listen_overflow] counter and in the clients' p99 (a dropped SYN costs
   a retransmit timeout). *)

type config = Freebsd_com | Linux_com | Oskit_com

let config_name = function
  | Freebsd_com -> "FreeBSD"
  | Linux_com -> "Linux"
  | Oskit_com -> "OSKit"

type mode = Reactor | Threads

let mode_name = function Reactor -> "reactor" | Threads -> "threads"

let ip = Oskit.ip_of_string
let mask = ip "255.255.255.0"

let ok = function
  | Ok v -> v
  | Error e -> failwith ("httpbench: " ^ Error.to_string e)

(* ---- the served file: position-dependent bytes so delivery is provably
   byte-exact end to end (same discipline as the chaos bench) ---- *)

let file_bytes = 1024
let pattern pos = (pos * 131) land 0xff

(* A freshly formatted memfs with one file — the FFS/blkio path the server
   reads through on every request. *)
let make_root () =
  let dev = Mem_blkio.make ~bytes:(1 lsl 20) () in
  let root = ok (Fs_glue.newfs dev) in
  let f = ok (root.Io_if.d_create "index.html") in
  let body = Bytes.init file_bytes (fun i -> Char.chr (pattern i)) in
  let rec push off =
    if off < file_bytes then
      match f.Io_if.f_write ~buf:body ~pos:off ~offset:off ~amount:(file_bytes - off) with
      | Ok n -> push (off + n)
      | Error e -> failwith ("httpbench: write: " ^ Error.to_string e)
  in
  push 0;
  root, Bytes.to_string body

(* ---- the equal-memory budget ---- *)

let ram_budget = 512 * 1024
let max_threads = ram_budget / Httpd.thread_stack_bytes (* 16 *)
let max_conns = ram_budget / Httpd.conn_state_bytes (* 256 *)
let backlog = 128

(* What a thread costs to create (stack allocation + context setup),
   charged to the server machine per spawned handler.  Zero by default so
   the calibrated Table 1/2 runs are untouched; the concurrency bench is
   exactly the workload where it matters. *)
let spawn_cycles = 20_000

type result = {
  r_config : config;
  r_mode : mode;
  r_clients : int;
  r_requests : int;
  r_duration_ms : float;
  r_rps : float;
  r_p50_us : float;
  r_p99_us : float;
  r_peak_active : int; (* high-water concurrent connections in the server *)
  r_accepted : int;
  r_responses : int;
  r_shed : int;
  r_listen_overflow : int; (* stack-level accept-queue SYN drops *)
  r_protocol_errors : int;
  r_mismatches : int; (* client-side byte-exactness failures *)
  r_reactor_sleeps : int;
  r_reactor_spurious : int;
}

let index_of s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = if i + m > n then None else if String.sub s i m = sub then Some i else go (i + 1) in
  go 0

(* Clients are deliberately slow: the request goes out in two pieces with
   [think_ns] between them, the way a WAN client's request straggles in
   over a long RTT.  Every connection is therefore open for at least
   [think_ns] of world time, which is what piles connections up at the
   server — the regime where thread-per-connection burns a parked stack
   per connection and the reactor burns a 2KB record. *)
let think_ns = 5_000_000

(* One run: [clients] FreeBSD-native blocking clients on host_a each issue
   [reqs_per_client] sequential GETs against the server on host_b.  All
   clients start inside a ~200ns-per-client window, so the connect burst
   is near-simultaneous — the regime the reactor exists for. *)
let run ?(reqs_per_client = 2) ~config ~mode ~clients () =
  Clientos.reset_globals ();
  Fdev.clear_drivers ();
  let saved_spawn = Cost.config.Cost.thread_spawn_cycles in
  Cost.config.Cost.thread_spawn_cycles <- spawn_cycles;
  Fun.protect
    ~finally:(fun () -> Cost.config.Cost.thread_spawn_cycles <- saved_spawn)
  @@ fun () ->
  let tb = Clientos.make_testbed ~models:("3c905", "tulip") () in
  let server = tb.Clientos.host_b and chost = tb.Clientos.host_a in
  let root, expect = make_root () in
  let sock, listen_overflow =
    match config with
    | Freebsd_com ->
        let stack = Clientos.freebsd_host server ~ip:(ip "10.0.0.2") ~mask in
        ( Freebsd_glue.socket_com stack (Bsd_socket.tcp_socket stack),
          fun () -> stack.Bsd_socket.tcp.Tcp.stats.Tcp.listen_overflow )
    | Linux_com ->
        let stack = Clientos.linux_host server ~ip:(ip "10.0.0.2") ~mask in
        ( Linux_sock_com.socket_com stack (Linux_inet.socket stack),
          fun () -> stack.Linux_inet.listen_overflow )
    | Oskit_com ->
        (* The paper's netcomputer shape: the BSD stack over the Linux
           driver through fdev/COM — the only configuration whose receive
           frames cross the glue, so the only one the batched-RX counters
           (Cost.rx_polls) can observe. *)
        let _env, stack = Clientos.oskit_host server ~ip:(ip "10.0.0.2") ~mask in
        ( Freebsd_glue.socket_com stack (Bsd_socket.tcp_socket stack),
          fun () -> stack.Bsd_socket.tcp.Tcp.stats.Tcp.listen_overflow )
  in
  let cstack = Clientos.freebsd_host chost ~ip:(ip "10.0.0.1") ~mask in
  let done_clients = ref 0 in
  let all_done () = !done_clients >= clients in
  let server_stats = ref None in
  let reactor = Reactor.create () in
  Clientos.spawn server ~name:"httpd" (fun () ->
      ok (sock.Io_if.so_bind { Io_if.sin_addr = ip "10.0.0.2"; sin_port = 80 });
      ok (sock.Io_if.so_listen ~backlog);
      match mode with
      | Reactor ->
          server_stats := Some (Httpd.serve_reactor ~reactor ~root ~sock ~max_conns ());
          Reactor.run reactor ~until:all_done
      | Threads ->
          server_stats :=
            Some
              (Httpd.serve_threaded
                 ~spawn:(fun f -> Clientos.spawn server f)
                 ~root ~sock ~max_threads ()));
  let samples = ref [] in
  let mismatches = ref 0 in
  let t_start = ref max_int and t_end = ref 0 in
  let request_head = "GET /index.html HTTP/1.0\r\n" in
  let request_tail = "\r\n" in
  let do_request ~record () =
    let t0 = Machine.now chost.Clientos.machine in
    let s = Bsd_socket.tcp_socket cstack in
    (match Bsd_socket.so_connect s ~dst:(ip "10.0.0.2") ~dport:80 with
    | Error _ -> incr mismatches
    | Ok () ->
        let push frag =
          let b = Bytes.of_string frag in
          let rec go off =
            if off < Bytes.length b then
              match Bsd_socket.so_send s ~buf:b ~pos:off ~len:(Bytes.length b - off) with
              | Ok n -> go (off + n)
              | Error _ -> ()
          in
          go 0
        in
        (* The slow-client dribble: request line now, terminator later. *)
        push request_head;
        Kclock.sleep_ns think_ns;
        push request_tail;
        let buf = Bytes.create 4096 in
        let acc = Buffer.create (file_bytes + 256) in
        let rec drain () =
          match Bsd_socket.so_recv s ~buf ~pos:0 ~len:4096 with
          | Ok 0 | Error _ -> ()
          | Ok n ->
              Buffer.add_subbytes acc buf 0 n;
              drain ()
        in
        drain ();
        let resp = Buffer.contents acc in
        let exact =
          String.length resp > 12
          && String.sub resp 0 12 = "HTTP/1.0 200"
          && match index_of resp "\r\n\r\n" with
             | Some i -> String.sub resp (i + 4) (String.length resp - i - 4) = expect
             | None -> false
        in
        if not exact then incr mismatches);
    ignore (Bsd_socket.so_close s);
    let t1 = Machine.now chost.Clientos.machine in
    if record then begin
      if t0 < !t_start then t_start := t0;
      if t1 > !t_end then t_end := t1;
      samples := (t1 - t0) :: !samples
    end
  in
  (* One unmeasured request first: it resolves ARP on both machines, so
     the measured burst is a TCP burst and not a fight over the bounded
     ARP waiter queue (PR 2's drop-head bound would serialize it). *)
  let warm = ref false in
  Clientos.spawn chost ~name:"warmup" (fun () ->
      Kclock.sleep_ns 2_000_000;
      do_request ~record:false ();
      warm := true);
  for i = 0 to clients - 1 do
    Clientos.spawn chost ~name:(Printf.sprintf "c%d" i) (fun () ->
        Kclock.sleep_ns (6_000_000 + (i * 200));
        while not !warm do
          Kclock.sleep_ns 200_000
        done;
        for _ = 1 to reqs_per_client do
          do_request ~record:true ()
        done;
        incr done_clients)
  done;
  Clientos.run tb ~until:all_done;
  let st = Option.get !server_stats in
  let sorted = Array.of_list (List.sort compare !samples) in
  let n = Array.length sorted in
  let pct p = if n = 0 then 0.0 else float_of_int sorted.((n - 1) * p / 100) /. 1e3 in
  let duration = max 1 (!t_end - !t_start) in
  let total = clients * reqs_per_client in
  let rstats = Reactor.stats reactor in
  { r_config = config;
    r_mode = mode;
    r_clients = clients;
    r_requests = total;
    r_duration_ms = float_of_int duration /. 1e6;
    r_rps = float_of_int total *. 1e9 /. float_of_int duration;
    r_p50_us = pct 50;
    r_p99_us = pct 99;
    r_peak_active = st.Httpd.peak_active;
    (* minus the unmeasured warmup request *)
    r_accepted = st.Httpd.accepted - 1;
    r_responses = st.Httpd.responses - 1;
    r_shed = st.Httpd.shed;
    r_listen_overflow = listen_overflow ();
    r_protocol_errors = st.Httpd.protocol_errors;
    r_mismatches = !mismatches;
    r_reactor_sleeps = rstats.Reactor.sleeps;
    r_reactor_spurious = rstats.Reactor.spurious }
