(* The two-PC network experiment runner shared by the Table 1/2 and VM
   benches: sets up each side of the testbed in any of the three system
   configurations (they interoperate on the wire), runs a ttcp- or
   rtcp-style workload in virtual time, and reports the paper's numbers. *)

type config = Oskit | Freebsd | Linux

let config_name = function Oskit -> "OSKit" | Freebsd -> "FreeBSD" | Linux -> "Linux"

let ip = Oskit.ip_of_string
let mask = ip "255.255.255.0"

let ok = function
  | Ok v -> v
  | Error e -> failwith ("netbench: " ^ Error.to_string e)

(* A role-neutral socket bundle: blocking send/recv/close over whichever
   stack the configuration dictates. *)
type sock = {
  send : bytes -> int -> int;
  recv : bytes -> int -> int;
  close : unit -> unit;
}

(* Host-side protocol counters the chaos bench reads after a run:
   retransmissions prove the loss was real; checksum/dup drops prove the
   receiver discarded what netem damaged or repeated. *)
type stack_stats = {
  rexmits : unit -> int;
  tcp_badsum : unit -> int;
  tcp_dups : unit -> int;
}

let bsd_stats (stack : Bsd_socket.stack) =
  let s = stack.Bsd_socket.tcp.Tcp.stats in
  { rexmits = (fun () -> s.Tcp.sndrexmitpack + s.Tcp.fastrexmit);
    tcp_badsum = (fun () -> s.Tcp.rcvbadsum);
    tcp_dups = (fun () -> s.Tcp.rcvdup) }

let linux_stats (stack : Linux_inet.stack) =
  { rexmits = (fun () -> stack.Linux_inet.rexmits);
    tcp_badsum = (fun () -> stack.Linux_inet.tcpbadsum);
    tcp_dups = (fun () -> stack.Linux_inet.rcvdup) }

(* Prepare a host in [config]; returns (serve, connect, stats):
   [serve ~port k] spawns a server thread that accepts one connection and
   passes its socket to [k]; [connect ~port k] spawns a client thread that
   connects and passes its socket to [k]. *)
let setup config host ~addr =
  match config with
  | Oskit ->
      let env, stack = Clientos.oskit_host host ~ip:addr ~mask in
      let serve ~port k =
        Clientos.spawn host ~name:"server" (fun () ->
            let fd = ok (Posix.socket env Io_if.Sock_stream) in
            ok (Posix.bind env fd { Io_if.sin_addr = addr; sin_port = port });
            ok (Posix.listen env fd ~backlog:2);
            let conn, _ = ok (Posix.accept env fd) in
            k
              { send = (fun b len -> ok (Posix.send env conn b ~pos:0 ~len));
                recv = (fun b len -> ok (Posix.recv env conn b ~pos:0 ~len));
                close = (fun () -> ignore (Posix.close env conn)) })
      in
      let connect ~dst ~port k =
        Clientos.spawn host ~name:"client" (fun () ->
            Kclock.sleep_ns 2_000_000;
            let fd = ok (Posix.socket env Io_if.Sock_stream) in
            ok (Posix.connect env fd { Io_if.sin_addr = dst; sin_port = port });
            k
              { send = (fun b len -> ok (Posix.send env fd b ~pos:0 ~len));
                recv = (fun b len -> ok (Posix.recv env fd b ~pos:0 ~len));
                close = (fun () -> ignore (Posix.shutdown env fd)) })
      in
      serve, connect, bsd_stats stack
  | Freebsd ->
      let stack = Clientos.freebsd_host host ~ip:addr ~mask in
      let of_tsock s =
        { send = (fun b len -> ok (Bsd_socket.so_send s ~buf:b ~pos:0 ~len));
          recv = (fun b len -> ok (Bsd_socket.so_recv s ~buf:b ~pos:0 ~len));
          close = (fun () -> ignore (Bsd_socket.so_close s)) }
      in
      let serve ~port k =
        Clientos.spawn host ~name:"server" (fun () ->
            let ls = Bsd_socket.tcp_socket stack in
            ok (Bsd_socket.so_bind ls ~port);
            ok (Bsd_socket.so_listen ls ~backlog:2);
            k (of_tsock (ok (Bsd_socket.so_accept ls))))
      in
      let connect ~dst ~port k =
        Clientos.spawn host ~name:"client" (fun () ->
            Kclock.sleep_ns 2_000_000;
            let s = Bsd_socket.tcp_socket stack in
            ok (Bsd_socket.so_connect s ~dst ~dport:port);
            k (of_tsock s))
      in
      serve, connect, bsd_stats stack
  | Linux ->
      let stack = Clientos.linux_host host ~ip:addr ~mask in
      let of_sock s =
        { send = (fun b len -> ok (Linux_inet.send stack s ~buf:b ~pos:0 ~len));
          recv = (fun b len -> ok (Linux_inet.recv stack s ~buf:b ~pos:0 ~len));
          close = (fun () -> Linux_inet.close stack s) }
      in
      let serve ~port k =
        Clientos.spawn host ~name:"server" (fun () ->
            let ls = Linux_inet.socket stack in
            Linux_inet.bind stack ls ~port;
            Linux_inet.listen stack ls ~backlog:2;
            k (of_sock (ok (Linux_inet.accept stack ls))))
      in
      let connect ~dst ~port k =
        Clientos.spawn host ~name:"client" (fun () ->
            Kclock.sleep_ns 2_000_000;
            let s = Linux_inet.socket stack in
            ok (Linux_inet.connect stack s ~dst ~dport:port);
            k (of_sock s))
      in
      serve, connect, linux_stats stack

type transfer_result = {
  mbit_sender : float; (* bandwidth from the sender's clock, ttcp-style *)
  mbit_e2e : float;
  copies_per_kpkt : int;
  crossings_per_kpkt : int;
  packets : int;
  sg_xmits : int;          (* frames the NIC gathered from an iovec *)
  linearized_xmits : int;  (* frames flattened at the glue (the copy) *)
  checksummed_bytes : int;
}

(* ttcp: [sender] pushes blocks x blocksize to [receiver].  [sg] turns on
   the scatter-gather transmit path at the mbuf->skbuff glue (default off:
   the paper's measured configuration flattens chains there). *)
let transfer ?(sg = false) ~sender ~receiver ~blocks ~blocksize () =
  Clientos.reset_globals ();
  Cost.config.Cost.sg_tx <- sg;
  Fdev.clear_drivers ();
  let tb = Clientos.make_testbed ~models:("3c905", "tulip") () in
  let total = blocks * blocksize in
  let serve, _, _ = setup receiver tb.Clientos.host_b ~addr:(ip "10.0.0.2") in
  let _, connect, _ = setup sender tb.Clientos.host_a ~addr:(ip "10.0.0.1") in
  let send_ns = ref 0 and recv_done = ref 0 in
  serve ~port:5001 (fun s ->
      let buf = Bytes.create 16384 in
      let rec loop () =
        match s.recv buf 16384 with
        | 0 ->
            recv_done := Machine.now tb.Clientos.host_b.Clientos.machine;
            s.close ()
        | _ -> loop ()
      in
      loop ());
  connect ~dst:(ip "10.0.0.2") ~port:5001 (fun s ->
      let block = Bytes.make blocksize 'T' in
      let t0 = Machine.now tb.Clientos.host_a.Clientos.machine in
      for _ = 1 to blocks do
        if s.send block blocksize <> blocksize then failwith "short send"
      done;
      send_ns := Machine.now tb.Clientos.host_a.Clientos.machine - t0;
      s.close ());
  Cost.reset_counters ();
  Clientos.run tb ~until:(fun () -> !recv_done > 0);
  let packets = Wire.frames_carried tb.Clientos.wire in
  Cost.config.Cost.sg_tx <- false;
  { mbit_sender = float_of_int total *. 8e3 /. float_of_int !send_ns;
    mbit_e2e = float_of_int total *. 8e3 /. float_of_int !recv_done;
    copies_per_kpkt = Cost.counters.Cost.copies * 1000 / max 1 packets;
    crossings_per_kpkt = Cost.counters.Cost.glue_crossings * 1000 / max 1 packets;
    packets;
    sg_xmits = Cost.counters.Cost.sg_xmits;
    linearized_xmits = Cost.counters.Cost.linearized_xmits;
    checksummed_bytes = Cost.counters.Cost.checksummed_bytes }

(* rtcp: 1-byte round trips, both sides in [config]. *)
let rtt_us config ~trips =
  Clientos.reset_globals ();
  Fdev.clear_drivers ();
  let tb = Clientos.make_testbed ~models:("3c905", "tulip") () in
  let serve, _, _ = setup config tb.Clientos.host_b ~addr:(ip "10.0.0.2") in
  let _, connect, _ = setup config tb.Clientos.host_a ~addr:(ip "10.0.0.1") in
  let result = ref 0.0 in
  serve ~port:5002 (fun s ->
      let buf = Bytes.create 1 in
      let rec loop () =
        match s.recv buf 1 with
        | 0 -> s.close ()
        | _ ->
            ignore (s.send buf 1);
            loop ()
      in
      loop ());
  connect ~dst:(ip "10.0.0.2") ~port:5002 (fun s ->
      let one = Bytes.make 1 'R' in
      let buf = Bytes.create 1 in
      ignore (s.send one 1);
      ignore (s.recv buf 1);
      let t0 = Machine.now tb.Clientos.host_a.Clientos.machine in
      for _ = 1 to trips do
        ignore (s.send one 1);
        ignore (s.recv buf 1)
      done;
      result :=
        float_of_int (Machine.now tb.Clientos.host_a.Clientos.machine - t0)
        /. float_of_int trips /. 1e3;
      s.close ());
  Clientos.run tb ~until:(fun () -> !result > 0.0);
  !result

(* rtcp again, but keeping the whole per-trip distribution and the receive
   fast-path counters.  [fastpath] turns on all three receive-side layers at
   once (header prediction, hashed PCB demux, batched RX) — default off, so
   the plain Table 2 run above stays the paper's measured configuration.
   The per-trip [Machine.now] reads charge nothing, so the mean here agrees
   with [rtt_us] on the same flags. *)
type rtt_dist = {
  rtt_mean_us : float;
  rtt_p50_us : float;
  rtt_p95_us : float;
  rtt_p99_us : float;
  rtt_fastpath_hits : int;
  rtt_fastpath_fallbacks : int;
  rtt_pcb_cache_hits : int;
  rtt_pcb_cache_misses : int;
  rtt_rx_polls : int;        (* vectored bursts through the glue *)
  rtt_rx_frames : int;       (* frames those bursts carried *)
}

let dist ?(fastpath = false) config ~trips =
  Clientos.reset_globals ();
  Cost.config.Cost.tcp_fastpath <- fastpath;
  Cost.config.Cost.pcb_hash <- fastpath;
  Cost.config.Cost.rx_batch <- (if fastpath then 8 else 1);
  Fdev.clear_drivers ();
  let tb = Clientos.make_testbed ~models:("3c905", "tulip") () in
  let serve, _, _ = setup config tb.Clientos.host_b ~addr:(ip "10.0.0.2") in
  let _, connect, _ = setup config tb.Clientos.host_a ~addr:(ip "10.0.0.1") in
  let samples = Array.make (max 1 trips) 0 in
  let finished = ref false in
  serve ~port:5002 (fun s ->
      let buf = Bytes.create 1 in
      let rec loop () =
        match s.recv buf 1 with
        | 0 -> s.close ()
        | _ ->
            ignore (s.send buf 1);
            loop ()
      in
      loop ());
  connect ~dst:(ip "10.0.0.2") ~port:5002 (fun s ->
      let one = Bytes.make 1 'R' in
      let buf = Bytes.create 1 in
      ignore (s.send one 1);
      ignore (s.recv buf 1);
      let machine = tb.Clientos.host_a.Clientos.machine in
      for i = 0 to trips - 1 do
        let t0 = Machine.now machine in
        ignore (s.send one 1);
        ignore (s.recv buf 1);
        samples.(i) <- Machine.now machine - t0
      done;
      finished := true;
      s.close ());
  Clientos.run tb ~until:(fun () -> !finished);
  Cost.config.Cost.tcp_fastpath <- false;
  Cost.config.Cost.pcb_hash <- false;
  Cost.config.Cost.rx_batch <- 1;
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  let n = Array.length sorted in
  let pct p = float_of_int sorted.(min (n - 1) ((n - 1) * p / 100)) /. 1e3 in
  { rtt_mean_us =
      float_of_int (Array.fold_left ( + ) 0 samples)
      /. float_of_int (max 1 trips) /. 1e3;
    rtt_p50_us = pct 50;
    rtt_p95_us = pct 95;
    rtt_p99_us = pct 99;
    rtt_fastpath_hits = Cost.counters.Cost.fastpath_hits;
    rtt_fastpath_fallbacks = Cost.counters.Cost.fastpath_fallbacks;
    rtt_pcb_cache_hits = Cost.counters.Cost.pcb_cache_hits;
    rtt_pcb_cache_misses = Cost.counters.Cost.pcb_cache_misses;
    rtt_rx_polls = Cost.counters.Cost.rx_polls;
    rtt_rx_frames = Cost.counters.Cost.rx_batched_frames }

(* Section 6.2.6: throughput measured from inside the bytecode VM on the
   OSKit configuration.  The VM program loops sys_recv (or sys_send); the
   other side is a native FreeBSD peer. *)
let vm_throughput ~direction ~bytes =
  Clientos.reset_globals ();
  Fdev.clear_drivers ();
  let tb = Clientos.make_testbed ~models:("3c905", "tulip") () in
  let vm_host = tb.Clientos.host_a and peer = tb.Clientos.host_b in
  let env, _ = Clientos.oskit_host vm_host ~ip:(ip "10.0.0.1") ~mask in
  let stack = Clientos.freebsd_host peer ~ip:(ip "10.0.0.2") ~mask in
  let finished_ns = ref 0 in
  let chunk = 8192 in
  (* VM program: loop { n = sys(recv/send)(heap 8192, 8192); global1 += n;
     if global1 >= global0 halt }.  global0 preloaded with the target. *)
  let sys_no = if direction = `Receive then Vm.sys_recv else Vm.sys_send in
  let program =
    [| Vm.Push bytes; Vm.Store 0; Vm.Push 0; Vm.Store 1;
       (* loop: *)
       Vm.Push 8192; Vm.Push chunk; Vm.Sys sys_no;
       Vm.Dup; Vm.Jz 20 (* eof -> halt *);
       Vm.Load 1; Vm.Add; Vm.Store 1;
       Vm.Load 1; Vm.Load 0; Vm.Lt; Vm.Jz 20 (* done -> halt *);
       Vm.Jmp 4;
       Vm.Halt; Vm.Halt; Vm.Halt;
       (* 20: *)
       Vm.Halt |]
  in
  (* Peer: FreeBSD-native source or sink. *)
  Clientos.spawn peer ~name:"peer" (fun () ->
      let ls = Bsd_socket.tcp_socket stack in
      ok (Bsd_socket.so_bind ls ~port:5003);
      ok (Bsd_socket.so_listen ls ~backlog:1);
      let conn = ok (Bsd_socket.so_accept ls) in
      let buf = Bytes.make chunk 'V' in
      (match direction with
      | `Receive ->
          (* Peer sends [bytes] to the VM. *)
          let rec push sent =
            if sent < bytes then begin
              let n = ok (Bsd_socket.so_send conn ~buf ~pos:0 ~len:(min chunk (bytes - sent))) in
              push (sent + n)
            end
          in
          push 0;
          ignore (Bsd_socket.so_close conn)
      | `Send ->
          let rec sink () =
            match ok (Bsd_socket.so_recv conn ~buf ~pos:0 ~len:chunk) with
            | 0 -> ()
            | _ -> sink ()
          in
          sink ()));
  Clientos.spawn vm_host ~name:"vm" (fun () ->
      Kclock.sleep_ns 2_000_000;
      let fd = ok (Posix.socket env Io_if.Sock_stream) in
      ok (Posix.connect env fd { Io_if.sin_addr = ip "10.0.0.2"; sin_port = 5003 });
      let bindings =
        { Vm.putc = (fun _ -> ());
          send =
            (fun b ~pos ~len ->
              match Posix.send env fd b ~pos ~len with
              | Ok n ->
                  Cost.charge_copy n (* the VM-heap copy *);
                  n
              | Error _ -> 0);
          recv =
            (fun b ~pos ~len ->
              match Posix.recv env fd b ~pos ~len with
              | Ok n ->
                  Cost.charge_copy n;
                  n
              | Error _ -> 0);
          time_ns = (fun () -> Machine.now vm_host.Clientos.machine) }
      in
      let vm = Vm.create ~heap_size:(64 * 1024) ~bindings program in
      let t0 = Machine.now vm_host.Clientos.machine in
      ignore (Vm.run ~fuel:200_000_000 vm);
      (match direction with `Send -> ignore (Posix.shutdown env fd) | `Receive -> ());
      finished_ns := Machine.now vm_host.Clientos.machine - t0);
  Clientos.run tb ~until:(fun () -> !finished_ns > 0);
  float_of_int bytes *. 8e3 /. float_of_int !finished_ns

(* ---- chaos mode: ttcp under injected faults ---- *)

(* Position-dependent payload so delivery is provably byte-exact: any
   duplicated, reordered, or corrupted byte that leaks through TCP lands at
   the wrong position and is caught at the receiver. *)
let pattern pos = (pos * 131) land 0xff

type chaos_result = {
  goodput_mbit : float;  (* end-to-end, from the receiver's clock *)
  chaos_rexmits : int;   (* sender-stack data retransmissions *)
  wire_offered : int;
  wire_dropped : int;    (* frames netem discarded in transit *)
  byte_exact : bool;     (* every payload byte correct and accounted for *)
  rcv_badsum : int;      (* receiver-stack TCP checksum drops *)
  rcv_dups : int;        (* receiver-stack duplicate-segment drops *)
}

let chaos_transfer ?(seed = 42) ?(loss = 0.01) ?(corrupt = 0.0)
    ?(corrupt_min_len = 0) ?(duplicate = 0.0) ?(sg = false) ~sender ~receiver
    ~blocks ~blocksize () =
  Clientos.reset_globals ();
  Cost.config.Cost.sg_tx <- sg;
  Fdev.clear_drivers ();
  let tb = Clientos.make_testbed ~models:("3c905", "tulip") () in
  let em =
    Netem.create ~seed
      ~policy:{ Netem.default_policy with loss; corrupt; corrupt_min_len; duplicate }
      ()
  in
  Wire.set_netem tb.Clientos.wire (Some em);
  let total = blocks * blocksize in
  let serve, _, rstats = setup receiver tb.Clientos.host_b ~addr:(ip "10.0.0.2") in
  let _, connect, sstats = setup sender tb.Clientos.host_a ~addr:(ip "10.0.0.1") in
  let recv_done = ref 0 and mismatches = ref 0 and received = ref 0 in
  serve ~port:5004 (fun s ->
      let buf = Bytes.create 16384 in
      let rec loop () =
        match s.recv buf 16384 with
        | 0 ->
            recv_done := Machine.now tb.Clientos.host_b.Clientos.machine;
            s.close ()
        | n ->
            for i = 0 to n - 1 do
              if Char.code (Bytes.get buf i) <> pattern (!received + i) then
                incr mismatches
            done;
            received := !received + n;
            loop ()
      in
      loop ());
  connect ~dst:(ip "10.0.0.2") ~port:5004 (fun s ->
      let block = Bytes.create blocksize in
      for b = 0 to blocks - 1 do
        for i = 0 to blocksize - 1 do
          Bytes.set block i (Char.chr (pattern ((b * blocksize) + i)))
        done;
        if s.send block blocksize <> blocksize then failwith "chaos: short send"
      done;
      s.close ());
  Clientos.run tb ~until:(fun () -> !recv_done > 0);
  Cost.config.Cost.sg_tx <- false;
  if !recv_done = 0 then failwith "chaos: transfer did not complete";
  { goodput_mbit = float_of_int total *. 8e3 /. float_of_int !recv_done;
    chaos_rexmits = sstats.rexmits ();
    wire_offered = Wire.frames_carried tb.Clientos.wire;
    wire_dropped = Wire.frames_dropped tb.Clientos.wire;
    byte_exact = (!mismatches = 0 && !received = total);
    rcv_badsum = rstats.tcp_badsum ();
    rcv_dups = rstats.tcp_dups () }

(* ---- long fat pipes: ttcp over a stretched wire ---- *)

(* Socket-buffer discipline for a longfat run.  [Lf_default] is the seed
   configuration (16-bit windows, fixed buffers); [Lf_manual] negotiates
   wscale and hand-sizes both ends' buffers to 2x the path BDP — the
   operator's recipe; [Lf_autotune] negotiates wscale and lets the stacks
   grow their own buffers (Cost.config.tcp_autotune). *)
type bufmode = Lf_default | Lf_manual | Lf_autotune

type longfat_result = {
  lf_mbit : float;          (* end-to-end goodput, receiver's clock *)
  lf_byte_exact : bool;
  lf_rexmits : int;
  lf_rcv_buf : int;         (* receiver buffer at the end of the run *)
  lf_persist_probes : int;  (* Linux only; 0 elsewhere *)
}

let longfat_transfer ?(seed = 42) ?(loss = 0.0) ~config ~rtt_ns ~bufmode ~bytes
    () =
  Clientos.reset_globals ();
  let saved_ws = Cost.config.Cost.tcp_wscale in
  let saved_at = Cost.config.Cost.tcp_autotune in
  (match bufmode with
  | Lf_default -> ()
  | Lf_manual -> Cost.config.Cost.tcp_wscale <- true
  | Lf_autotune ->
      Cost.config.Cost.tcp_wscale <- true;
      Cost.config.Cost.tcp_autotune <- true);
  Fdev.clear_drivers ();
  let tb =
    Clientos.make_testbed ~models:("3c905", "tulip")
      ~latency_ns:(max 1_000 (rtt_ns / 2)) ()
  in
  if loss > 0.0 then begin
    let em = Netem.create ~seed ~policy:{ Netem.default_policy with loss } () in
    Wire.set_netem tb.Clientos.wire (Some em)
  end;
  (* BDP at the wire's 100 Mbps: bytes = rate/8 * rtt.  Manual mode sizes
     to 2x BDP (headroom for ACK clocking), floored at the seed default. *)
  let bdp = rtt_ns / 80 in
  let manual =
    match bufmode with
    | Lf_manual -> Some (min Cost.config.Cost.tcp_sockbuf_max (max (64 * 1024) (2 * bdp)))
    | _ -> None
  in
  let recv_done = ref 0 and mismatches = ref 0 and received = ref 0 in
  let final_rcv_buf = ref 0 and persist_probes = ref 0 and rexmits = ref 0 in
  let check buf n =
    for i = 0 to n - 1 do
      if Char.code (Bytes.get buf i) <> pattern (!received + i) then incr mismatches
    done;
    received := !received + n
  in
  let blocksize = 16384 in
  (match config with
  | Oskit | Freebsd ->
      let stack_b = Clientos.freebsd_host tb.Clientos.host_b ~ip:(ip "10.0.0.2") ~mask in
      let stack_a = Clientos.freebsd_host tb.Clientos.host_a ~ip:(ip "10.0.0.1") ~mask in
      Clientos.spawn tb.Clientos.host_b ~name:"server" (fun () ->
          let ls = Bsd_socket.tcp_socket stack_b in
          ok (Bsd_socket.so_bind ls ~port:5005);
          ok (Bsd_socket.so_listen ls ~backlog:2);
          let c = ok (Bsd_socket.so_accept ls) in
          (match manual with
          | Some b ->
              Tcp.set_buffer_sizes c.Bsd_socket.pcb
                ~snd:c.Bsd_socket.pcb.Tcp.snd_buf.Sockbuf.sb_hiwat ~rcv:b
          | None -> ());
          let buf = Bytes.create blocksize in
          let rec loop () =
            match ok (Bsd_socket.so_recv c ~buf ~pos:0 ~len:blocksize) with
            | 0 ->
                final_rcv_buf := c.Bsd_socket.pcb.Tcp.rcv_buf.Sockbuf.sb_hiwat;
                recv_done := Machine.now tb.Clientos.host_b.Clientos.machine;
                ignore (Bsd_socket.so_close c)
            | n ->
                check buf n;
                loop ()
          in
          loop ());
      Clientos.spawn tb.Clientos.host_a ~name:"client" (fun () ->
          Kclock.sleep_ns 2_000_000;
          let s = Bsd_socket.tcp_socket stack_a in
          (match manual with
          | Some b ->
              Tcp.set_buffer_sizes s.Bsd_socket.pcb ~snd:b
                ~rcv:s.Bsd_socket.pcb.Tcp.rcv_buf.Sockbuf.sb_hiwat
          | None -> ());
          ok (Bsd_socket.so_connect s ~dst:(ip "10.0.0.2") ~dport:5005);
          let block = Bytes.create blocksize in
          let rec push sent =
            if sent < bytes then begin
              let n = min blocksize (bytes - sent) in
              for i = 0 to n - 1 do
                Bytes.set block i (Char.chr (pattern (sent + i)))
              done;
              if ok (Bsd_socket.so_send s ~buf:block ~pos:0 ~len:n) <> n then
                failwith "longfat: short send";
              push (sent + n)
            end
          in
          push 0;
          rexmits :=
            stack_a.Bsd_socket.tcp.Tcp.stats.Tcp.sndrexmitpack
            + stack_a.Bsd_socket.tcp.Tcp.stats.Tcp.fastrexmit;
          ignore (Bsd_socket.so_close s))
  | Linux ->
      let stack_b = Clientos.linux_host tb.Clientos.host_b ~ip:(ip "10.0.0.2") ~mask in
      let stack_a = Clientos.linux_host tb.Clientos.host_a ~ip:(ip "10.0.0.1") ~mask in
      Clientos.spawn tb.Clientos.host_b ~name:"server" (fun () ->
          let ls = Linux_inet.socket stack_b in
          Linux_inet.bind stack_b ls ~port:5005;
          Linux_inet.listen stack_b ls ~backlog:2;
          let c = ok (Linux_inet.accept stack_b ls) in
          (match manual with Some b -> c.Linux_inet.rcv_buf_max <- b | None -> ());
          let buf = Bytes.create blocksize in
          let rec loop () =
            match ok (Linux_inet.recv stack_b c ~buf ~pos:0 ~len:blocksize) with
            | 0 ->
                final_rcv_buf := c.Linux_inet.rcv_buf_max;
                recv_done := Machine.now tb.Clientos.host_b.Clientos.machine;
                Linux_inet.close stack_b c
            | n ->
                check buf n;
                loop ()
          in
          loop ());
      Clientos.spawn tb.Clientos.host_a ~name:"client" (fun () ->
          Kclock.sleep_ns 2_000_000;
          let s = Linux_inet.socket stack_a in
          ok (Linux_inet.connect stack_a s ~dst:(ip "10.0.0.2") ~dport:5005);
          let block = Bytes.create blocksize in
          let rec push sent =
            if sent < bytes then begin
              let n = min blocksize (bytes - sent) in
              for i = 0 to n - 1 do
                Bytes.set block i (Char.chr (pattern (sent + i)))
              done;
              if ok (Linux_inet.send stack_a s ~buf:block ~pos:0 ~len:n) <> n then
                failwith "longfat: short send";
              push (sent + n)
            end
          in
          push 0;
          rexmits := stack_a.Linux_inet.rexmits;
          persist_probes :=
            stack_a.Linux_inet.persist_probes + stack_b.Linux_inet.persist_probes;
          Linux_inet.close stack_a s));
  Clientos.run tb ~until:(fun () -> !recv_done > 0);
  Cost.config.Cost.tcp_wscale <- saved_ws;
  Cost.config.Cost.tcp_autotune <- saved_at;
  if !recv_done = 0 then failwith "longfat: transfer did not complete";
  { lf_mbit = float_of_int bytes *. 8e3 /. float_of_int !recv_done;
    lf_byte_exact = (!mismatches = 0 && !received = bytes);
    lf_rexmits = !rexmits;
    lf_rcv_buf = !final_rcv_buf;
    lf_persist_probes = !persist_probes }

(* Forced zero window on the Linux stack: the receiver accepts, then sits
   on a full receive queue for [stall_ns] of virtual time before draining.
   The sender exhausts the advertised window and parks in [send]; only the
   persist timer talks during the stall.  Returns (persist probes sent,
   byte-exact). *)
let zero_window_run ?(stall_ns = 3_000_000_000) ?(bytes = 256 * 1024) () =
  Clientos.reset_globals ();
  Fdev.clear_drivers ();
  let tb = Clientos.make_testbed ~models:("3c905", "tulip") () in
  let stack_b = Clientos.linux_host tb.Clientos.host_b ~ip:(ip "10.0.0.2") ~mask in
  let stack_a = Clientos.linux_host tb.Clientos.host_a ~ip:(ip "10.0.0.1") ~mask in
  let recv_done = ref 0 and mismatches = ref 0 and received = ref 0 in
  Clientos.spawn tb.Clientos.host_b ~name:"server" (fun () ->
      let ls = Linux_inet.socket stack_b in
      Linux_inet.bind stack_b ls ~port:5006;
      Linux_inet.listen stack_b ls ~backlog:2;
      let c = ok (Linux_inet.accept stack_b ls) in
      Kclock.sleep_ns stall_ns;
      let buf = Bytes.create 16384 in
      let rec loop () =
        match ok (Linux_inet.recv stack_b c ~buf ~pos:0 ~len:16384) with
        | 0 ->
            recv_done := Machine.now tb.Clientos.host_b.Clientos.machine;
            Linux_inet.close stack_b c
        | n ->
            for i = 0 to n - 1 do
              if Char.code (Bytes.get buf i) <> pattern (!received + i) then
                incr mismatches
            done;
            received := !received + n;
            loop ()
      in
      loop ());
  Clientos.spawn tb.Clientos.host_a ~name:"client" (fun () ->
      Kclock.sleep_ns 2_000_000;
      let s = Linux_inet.socket stack_a in
      ok (Linux_inet.connect stack_a s ~dst:(ip "10.0.0.2") ~dport:5006);
      let block = Bytes.create 16384 in
      let rec push sent =
        if sent < bytes then begin
          let n = min 16384 (bytes - sent) in
          for i = 0 to n - 1 do
            Bytes.set block i (Char.chr (pattern (sent + i)))
          done;
          if ok (Linux_inet.send stack_a s ~buf:block ~pos:0 ~len:n) <> n then
            failwith "zero_window: short send";
          push (sent + n)
        end
      in
      push 0;
      Linux_inet.close stack_a s);
  Clientos.run tb ~until:(fun () -> !recv_done > 0);
  ( stack_a.Linux_inet.persist_probes,
    !mismatches = 0 && !received = bytes )
