(* Table 3: the component source-size inventory, generated from this
   repository with the paper's counting rules: "filters out comments, blank
   lines, preprocessor directives, and punctuation-only lines".

   Classification follows the paper's columns: interface (.mli) vs
   implementation (.ml), and within implementations, native/assimilated vs
   encapsulated code — encapsulated files are those whose header carries
   the ENCAPSULATED LEGACY CODE marker, mirroring the donor-tree
   separation of Section 4.7.1. *)

type row = {
  component : string;
  description : string;
  interface : int;
  native : int;
  encapsulated : int;
}

(* Strip OCaml comments (nested) and count the lines that survive the
   paper's filter. *)
let filtered_count source =
  let n = String.length source in
  let out = Buffer.create n in
  let rec strip i depth =
    if i >= n then ()
    else if i + 1 < n && source.[i] = '(' && source.[i + 1] = '*' then strip (i + 2) (depth + 1)
    else if i + 1 < n && source.[i] = '*' && source.[i + 1] = ')' && depth > 0 then
      strip (i + 2) (depth - 1)
    else begin
      if depth = 0 || source.[i] = '\n' then Buffer.add_char out source.[i];
      strip (i + 1) depth
    end
  in
  strip 0 0;
  let is_punct_only line =
    String.for_all
      (fun c ->
        match c with
        | ' ' | '\t' | '{' | '}' | '(' | ')' | '[' | ']' | ';' | ',' | '|' -> true
        | _ -> false)
      line
  in
  let meaningful line =
    let l = String.trim line in
    l <> "" && not (is_punct_only l)
  in
  List.length (List.filter meaningful (String.split_on_char '\n' (Buffer.contents out)))

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let is_encapsulated source =
  String.length source > 0
  &&
  let probe = String.sub source 0 (min 400 (String.length source)) in
  let needle = "ENCAPSULATED LEGACY CODE" in
  let n = String.length needle and h = String.length probe in
  let rec go i = i + n <= h && (String.sub probe i n = needle || go (i + 1)) in
  go 0

let descriptions =
  [ "com", "COM interfaces & support";
    "machine", "Simulated testbed hardware (multi-CPU)";
    "boot", "Bootstrap support";
    "kern", "Kernel support";
    "smp", "Multiprocessor support (netisr, RSS)";
    "asyncio", "Readiness I/O & reactor";
    "event", "Event core (kqueue, timing wheel)";
    "httpd", "HTTP server (1.1 keep-alive, sendfile)";
    "malloc", "Size-class allocator";
    "lmm", "List Memory Manager";
    "amm", "Address Map Manager";
    "libc", "Minimal C library";
    "memdebug", "Malloc debugging";
    "diskpart", "Disk partitioning";
    "fsread", "File system reading";
    "exec", "Program loading";
    "fdev", "Device driver support";
    "linux_dev", "Linux drivers & support";
    "freebsd_dev", "FreeBSD drivers & support";
    "freebsd_net", "FreeBSD network stack";
    "linux_net", "Linux network stack";
    "linux_fs", "Linux FAT file system";
    "netbsd_fs", "NetBSD file system";
    "vm", "Bytecode VM (Kaffe stand-in)";
    "core", "Assembly recipes" ]

let component_rows ~lib_dir =
  let components = List.sort compare (Array.to_list (Sys.readdir lib_dir)) in
  List.filter_map
    (fun comp ->
      let dir = Filename.concat lib_dir comp in
      if not (Sys.is_directory dir) then None
      else begin
        let files = Array.to_list (Sys.readdir dir) in
        let row =
          List.fold_left
            (fun row file ->
              let path = Filename.concat dir file in
              if Filename.check_suffix file ".mli" then
                { row with interface = row.interface + filtered_count (read_file path) }
              else if Filename.check_suffix file ".ml" then begin
                let src = read_file path in
                let count = filtered_count src in
                if is_encapsulated src then
                  { row with encapsulated = row.encapsulated + count }
                else { row with native = row.native + count }
              end
              else row)
            { component = comp;
              description =
                Option.value (List.assoc_opt comp descriptions) ~default:"";
              interface = 0;
              native = 0;
              encapsulated = 0 }
            files
        in
        Some row
      end)
    components

let print_table ~lib_dir =
  let rows = component_rows ~lib_dir in
  Printf.printf "%-12s %-32s %10s %8s %13s %7s\n" "Library" "Description" "Interface"
    "Native" "Encapsulated" "Total";
  let ti = ref 0 and tn = ref 0 and te = ref 0 in
  List.iter
    (fun r ->
      ti := !ti + r.interface;
      tn := !tn + r.native;
      te := !te + r.encapsulated;
      Printf.printf "%-12s %-32s %10d %8d %13d %7d\n" r.component r.description r.interface
        r.native r.encapsulated
        (r.interface + r.native + r.encapsulated))
    rows;
  Printf.printf "%-12s %-32s %10d %8d %13d %7d\n" "Total" "" !ti !tn !te (!ti + !tn + !te)
