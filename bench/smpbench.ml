(* smpbench — the SMP scale-out experiment: the event-driven HTTP server
   of bench/httpbench sharded netisr-style across a multi-CPU machine.

   The server machine runs [ncpus] logical CPUs.  NIC RX computes an RSS
   hash over each frame's 4-tuple and steers it to the flow's home CPU
   before any per-frame driver work, so driver, protocol input, and socket
   wakeups all charge that CPU's clock; one reactor per CPU (each driven
   by a loop thread pinned there) serves the connections whose flows hash
   home to it.  The listen socket accepts on CPU 0 and each accepted
   connection migrates to its RSS home — the DragonFly shape.

   Clients run on an equally provisioned multi-CPU machine (round-robin
   thread placement) over a gigabit wire, so at every width the measured
   bottleneck is the server CPUs, not the client or the cable.  Every
   response is checked byte for byte against the served file — sharding
   that reorders or crosses flows would show up as mismatches, not just as
   noise in the rate. *)

let ip = Oskit.ip_of_string
let mask = ip "255.255.255.0"
let server_ip = ip "10.0.0.2"
let server_port = 80

let ok = function
  | Ok v -> v
  | Error e -> failwith ("smpbench: " ^ Error.to_string e)

(* Same position-dependent file as httpbench: delivery is provably exact. *)
let file_bytes = 1024
let pattern pos = (pos * 131) land 0xff

let make_root () =
  let dev = Mem_blkio.make ~bytes:(1 lsl 20) () in
  let root = ok (Fs_glue.newfs dev) in
  let f = ok (root.Io_if.d_create "index.html") in
  let body = Bytes.init file_bytes (fun i -> Char.chr (pattern i)) in
  let rec push off =
    if off < file_bytes then
      match f.Io_if.f_write ~buf:body ~pos:off ~offset:off ~amount:(file_bytes - off) with
      | Ok n -> push (off + n)
      | Error e -> failwith ("smpbench: write: " ^ Error.to_string e)
  in
  push 0;
  root, Bytes.to_string body

(* The widest row is a 2048-client connect burst: the listen backlog and
   the per-CPU netisr queue are provisioned for it (the real knobs — a
   listen(2) backlog and net.isr.maxqlen — are sized to the offered load
   the same way), so no row's rate is set by a drop-and-retransmit tail. *)
let backlog = 4096
let netisr_qmax = 4096

type result = {
  r_ncpus : int;
  r_clients : int;
  r_requests : int;
  r_duration_ms : float;
  r_rps : float;
  r_p50_us : float;
  r_p99_us : float;
  r_responses : int;
  r_mismatches : int; (* client-side byte-exactness failures *)
  r_rss_steered : int; (* frames the NIC's hardware RSS queued to a home CPU *)
  r_netisr_queued : int; (* frames that crossed CPUs through the netisr *)
  r_netisr_drops : int;
  r_spin_contentions : int; (* must stay 0: the hot path takes no locks *)
  r_cpu_share : float array; (* fraction of steered frames per server CPU *)
}

let index_of s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None else if String.sub s i m = sub then Some i else go (i + 1)
  in
  go 0

(* One run: [clients] blocking FreeBSD-native clients, [ncpus] CPUs on
   BOTH machines, reactor serving sharded across the server's CPUs.  The
   hot-path flags (hashed demux, header prediction) are on uniformly, so
   rows differ only in CPU count. *)
let run ?(reqs_per_client = 2) ~ncpus ~clients () =
  Clientos.reset_globals ();
  Fdev.clear_drivers ();
  let saved_ncpus = Cost.config.Cost.ncpus in
  let saved_hash = Cost.config.Cost.pcb_hash in
  let saved_fast = Cost.config.Cost.tcp_fastpath in
  let saved_qmax = Cost.config.Cost.netisr_qmax in
  Cost.config.Cost.ncpus <- ncpus;
  Cost.config.Cost.pcb_hash <- true;
  Cost.config.Cost.tcp_fastpath <- true;
  Cost.config.Cost.netisr_qmax <- netisr_qmax;
  Fun.protect
    ~finally:(fun () ->
      Cost.config.Cost.ncpus <- saved_ncpus;
      Cost.config.Cost.pcb_hash <- saved_hash;
      Cost.config.Cost.tcp_fastpath <- saved_fast;
      Cost.config.Cost.netisr_qmax <- saved_qmax)
  @@ fun () ->
  let tb =
    Clientos.make_testbed ~models:("3c905", "fxp-sim")
      ~bandwidth_bps:1_000_000_000 ()
  in
  let server = tb.Clientos.host_b and chost = tb.Clientos.host_a in
  let root, expect = make_root () in
  let stack = Clientos.freebsd_host server ~ip:server_ip ~mask in
  let sock = Freebsd_glue.socket_com stack (Bsd_socket.tcp_socket stack) in
  let cstack = Clientos.freebsd_host chost ~ip:(ip "10.0.0.1") ~mask in
  let done_clients = ref 0 in
  let all_done () = !done_clients >= clients in
  let server_stats = ref None in
  let reactors = Array.init ncpus (fun _ -> Reactor.create ()) in
  (* A connection's home CPU from the accept-time peer address: the same
     symmetric flow hash RX steering uses, so the reactor that parks the
     connection is the CPU its frames arrive on. *)
  let home (peer : Io_if.sockaddr) =
    Rss.cpu_of_flow ~ncpus ~proto:6 ~addr_a:server_ip ~port_a:server_port
      ~addr_b:peer.Io_if.sin_addr ~port_b:peer.Io_if.sin_port
  in
  Clientos.spawn server ~cpu:0 ~name:"httpd-accept" (fun () ->
      ok (sock.Io_if.so_bind { Io_if.sin_addr = server_ip; sin_port = server_port });
      ok (sock.Io_if.so_listen ~backlog);
      server_stats :=
        Some (Httpd.serve_reactor_sharded ~reactors ~home ~root ~sock ());
      Reactor.run reactors.(0) ~until:all_done);
  for c = 1 to ncpus - 1 do
    Clientos.spawn server ~cpu:c
      ~name:(Printf.sprintf "httpd-cpu%d" c)
      (fun () -> Reactor.run reactors.(c) ~until:all_done)
  done;
  let samples = ref [] in
  let mismatches = ref 0 in
  let t_start = ref max_int and t_end = ref 0 in
  let request = "GET /index.html HTTP/1.0\r\n\r\n" in
  let do_request ~record () =
    let t0 = Machine.now chost.Clientos.machine in
    let s = Bsd_socket.tcp_socket cstack in
    (match Bsd_socket.so_connect s ~dst:server_ip ~dport:server_port with
    | Error _ -> incr mismatches
    | Ok () ->
        let b = Bytes.of_string request in
        let rec push off =
          if off < Bytes.length b then
            match Bsd_socket.so_send s ~buf:b ~pos:off ~len:(Bytes.length b - off) with
            | Ok n -> push (off + n)
            | Error _ -> ()
        in
        push 0;
        let buf = Bytes.create 4096 in
        let acc = Buffer.create (file_bytes + 256) in
        let rec drain () =
          match Bsd_socket.so_recv s ~buf ~pos:0 ~len:4096 with
          | Ok 0 | Error _ -> ()
          | Ok n ->
              Buffer.add_subbytes acc buf 0 n;
              drain ()
        in
        drain ();
        let resp = Buffer.contents acc in
        let exact =
          String.length resp > 12
          && String.sub resp 0 12 = "HTTP/1.0 200"
          && match index_of resp "\r\n\r\n" with
             | Some i -> String.sub resp (i + 4) (String.length resp - i - 4) = expect
             | None -> false
        in
        if not exact then incr mismatches);
    ignore (Bsd_socket.so_close s);
    let t1 = Machine.now chost.Clientos.machine in
    if record then begin
      if t0 < !t_start then t_start := t0;
      if t1 > !t_end then t_end := t1;
      samples := (t1 - t0) :: !samples
    end
  in
  (* One unmeasured request resolves ARP first (as in httpbench). *)
  let warm = ref false in
  Clientos.spawn chost ~cpu:0 ~name:"warmup" (fun () ->
      Kclock.sleep_ns 2_000_000;
      do_request ~record:false ();
      warm := true);
  for i = 0 to clients - 1 do
    Clientos.spawn chost ~cpu:(i mod ncpus)
      ~name:(Printf.sprintf "c%d" i)
      (fun () ->
        Kclock.sleep_ns (6_000_000 + (i * 200));
        while not !warm do
          Kclock.sleep_ns 200_000
        done;
        for _ = 1 to reqs_per_client do
          do_request ~record:true ()
        done;
        incr done_clients)
  done;
  Clientos.run tb ~until:all_done;
  if Sys.getenv_opt "OSKIT_SMP_DEBUG" <> None then begin
    let dump name m =
      Printf.printf "%s clocks:" name;
      for c = 0 to ncpus - 1 do
        Printf.printf " %d" (Machine.cpu_now m ~cpu:c / 1_000_000)
      done;
      Printf.printf "  busy:";
      for c = 0 to ncpus - 1 do
        Printf.printf " %d" (Machine.cpu_busy_ns m ~cpu:c / 1_000_000)
      done;
      print_newline ()
    in
    dump "server" server.Clientos.machine;
    dump "client" chost.Clientos.machine
  end;
  let st = Option.get !server_stats in
  let sorted = Array.of_list (List.sort compare !samples) in
  let n = Array.length sorted in
  let pct p = if n = 0 then 0.0 else float_of_int sorted.((n - 1) * p / 100) /. 1e3 in
  let duration = max 1 (!t_end - !t_start) in
  let total = clients * reqs_per_client in
  (* Per-CPU share of the server's sharded segment input: how evenly RSS
     spread the offered flows. *)
  let per_cpu =
    Array.init ncpus (fun c -> (Tcp.stats_for stack.Bsd_socket.tcp ~cpu:c).Tcp.rcvpack)
  in
  let tot_steered = max 1 (Array.fold_left ( + ) 0 per_cpu) in
  { r_ncpus = ncpus;
    r_clients = clients;
    r_requests = total;
    r_duration_ms = float_of_int duration /. 1e6;
    r_rps = float_of_int total *. 1e9 /. float_of_int duration;
    r_p50_us = pct 50;
    r_p99_us = pct 99;
    (* minus the unmeasured warmup request *)
    r_responses = st.Httpd.responses - 1;
    r_mismatches = !mismatches;
    r_rss_steered = Cost.counters.Cost.rss_steered;
    r_netisr_queued = Cost.counters.Cost.netisr_queued;
    r_netisr_drops = Cost.counters.Cost.netisr_drops;
    r_spin_contentions = Cost.counters.Cost.spin_contentions;
    r_cpu_share =
      Array.map (fun v -> float_of_int v /. float_of_int tot_steered) per_cpu }
