(* filebench — the content-path experiment: HTTP/1.1 keep-alive +
   pipelined serving and the sendfile-style zero-copy buffer-cache→wire
   path, measured against the HTTP/1.0 close-per-request baseline.

   Three knobs vary (all default-off, so the calibrated tables never see
   them):

     http_keepalive  persistent connections; requests reuse one TCP
                     connection instead of paying connect/teardown each
     sendfile        200 bodies leave as pinned buffer-cache fragments
                     loaned to the socket (Io_if.filemap -> Io_if.sendv)
                     instead of being copied into the response
     sg_tx           the loaned fragments ride the scatter-gather
                     transmit glue to the NIC without flattening

   The stacks differ on purpose: the BSD-derived stack (native and under
   the OSKit glue) exports the sendv face — its mbufs alias foreign
   storage — while the Linux stack does not (contiguous sk_buffs cannot),
   so with the sendfile knob on, Linux rows show the counted copy
   fallback.  That is the paper's Section 5 copy asymmetry surfacing at
   the application layer.

   Working sets run smaller and larger than the 64-block (256 KB) buffer
   cache, so cache hit/miss and eviction behaviour shows up in the
   counters; bodies are position-and-file-dependent bytes so every
   delivered response is provably byte-exact. *)

type config = Freebsd_com | Linux_com | Oskit_com

let config_name = function
  | Freebsd_com -> "FreeBSD"
  | Linux_com -> "Linux"
  | Oskit_com -> "OSKit"

type mode = Reactor | Threads

let mode_name = function Reactor -> "reactor" | Threads -> "threads"

type knobs = { k_keepalive : bool; k_sendfile : bool; k_sg : bool }

let knobs_name k =
  match k.k_keepalive, k.k_sendfile with
  | false, _ -> "http10"
  | true, false -> "keepalive"
  | true, true -> if k.k_sg then "ka+sendfile+sg" else "ka+sendfile"

let http10 = { k_keepalive = false; k_sendfile = false; k_sg = false }
let keepalive = { k_keepalive = true; k_sendfile = false; k_sg = false }
let ka_sendfile = { k_keepalive = true; k_sendfile = true; k_sg = true }

let ip = Oskit.ip_of_string
let mask = ip "255.255.255.0"
let backlog = 128

let ok = function
  | Ok v -> v
  | Error e -> failwith ("filebench: " ^ Error.to_string e)

(* ---- the served working set: [files] files of [file_bytes], each with
   its own position-dependent pattern so responses cannot be confused ---- *)

let pattern ~file pos = ((pos * 131) + (file * 17)) land 0xff

let file_name i = Printf.sprintf "f%d.bin" i

let make_root ~files ~file_bytes () =
  (* Big enough for the 128-file thrash working set: ninodes scales with
     the device (nblocks/8), and 4 MB leaves only 125 usable inodes. *)
  let dev = Mem_blkio.make ~bytes:(16 lsl 20) () in
  let root = ok (Fs_glue.newfs dev) in
  let bodies =
    Array.init files (fun fi ->
        let f = ok (root.Io_if.d_create (file_name fi)) in
        let body = Bytes.init file_bytes (fun i -> Char.chr (pattern ~file:fi i)) in
        let rec push off =
          if off < file_bytes then
            match
              f.Io_if.f_write ~buf:body ~pos:off ~offset:off ~amount:(file_bytes - off)
            with
            | Ok n -> push (off + n)
            | Error e -> failwith ("filebench: write: " ^ Error.to_string e)
        in
        push 0;
        Bytes.to_string body)
  in
  root, bodies

type result = {
  r_config : config;
  r_mode : mode;
  r_knobs : knobs;
  r_clients : int;
  r_pipeline : int; (* client pipelining depth (1 = serial request/response) *)
  r_requests : int;
  r_files : int;
  r_file_bytes : int;
  r_duration_ms : float;
  r_rps : float;
  r_responses : int;
  r_reused : int;
  r_pipelined : int;
  r_idle_closed : int;
  r_capped : int;
  r_protocol_errors : int;
  r_mismatches : int;
  r_sendfile_bodies : int;
  r_sendfile_fallbacks : int;
  r_body_bytes_copied : int;  (* through the httpd copy path (keep-alive engine) *)
  r_copied_per_req : float;
  r_bufcache_hits : int;
  r_bufcache_misses : int;
  r_accepted : int;
}

let index_of s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = if i + m > n then None else if String.sub s i m = sub then Some i else go (i + 1) in
  go 0

(* Parse "Content-Length: N" out of a response header block. *)
let content_length hdr =
  match index_of (String.lowercase_ascii hdr) "content-length:" with
  | None -> None
  | Some i -> (
      let rest = String.sub hdr (i + 15) (String.length hdr - i - 15) in
      let line =
        match String.index_opt rest '\r' with
        | Some j -> String.sub rest 0 j
        | None -> rest
      in
      int_of_string_opt (String.trim line))

(* One run: [clients] FreeBSD-native clients each issue [reqs_per_client]
   GETs round-robin over the working set.  With keep-alive on, each
   client holds ONE connection for all its requests and frames responses
   by Content-Length; with it off, every request pays a fresh
   connect/close and drains to EOF (the HTTP/1.0 discipline).
   [pipeline] (default 1) is the client's pipelining depth: bursts of
   that many requests go out back-to-back before the responses are read,
   in order — keep it within Cost.config.http_pipeline_max so the
   server's parse-ahead bound never throttles the reader. *)
let run ~config ~mode ~knobs ?(pipeline = 1) ~clients ~reqs_per_client ~files
    ~file_bytes () =
  Clientos.reset_globals ();
  Fdev.clear_drivers ();
  let saved_ka = Cost.config.Cost.http_keepalive in
  let saved_sf = Cost.config.Cost.sendfile in
  let saved_sg = Cost.config.Cost.sg_tx in
  Cost.config.Cost.http_keepalive <- knobs.k_keepalive;
  Cost.config.Cost.sendfile <- knobs.k_sendfile;
  Cost.config.Cost.sg_tx <- knobs.k_sg;
  Fun.protect
    ~finally:(fun () ->
      Cost.config.Cost.http_keepalive <- saved_ka;
      Cost.config.Cost.sendfile <- saved_sf;
      Cost.config.Cost.sg_tx <- saved_sg)
  @@ fun () ->
  let tb = Clientos.make_testbed ~models:("3c905", "tulip") () in
  let server = tb.Clientos.host_b and chost = tb.Clientos.host_a in
  let root, bodies = make_root ~files ~file_bytes () in
  let sock =
    match config with
    | Freebsd_com ->
        let stack = Clientos.freebsd_host server ~ip:(ip "10.0.0.2") ~mask in
        Freebsd_glue.socket_com stack (Bsd_socket.tcp_socket stack)
    | Linux_com ->
        let stack = Clientos.linux_host server ~ip:(ip "10.0.0.2") ~mask in
        Linux_sock_com.socket_com stack (Linux_inet.socket stack)
    | Oskit_com ->
        let _env, stack = Clientos.oskit_host server ~ip:(ip "10.0.0.2") ~mask in
        Freebsd_glue.socket_com stack (Bsd_socket.tcp_socket stack)
  in
  let cstack = Clientos.freebsd_host chost ~ip:(ip "10.0.0.1") ~mask in
  let done_clients = ref 0 in
  let all_done () = !done_clients >= clients in
  let server_stats = ref None in
  let reactor = Reactor.create () in
  Clientos.spawn server ~name:"httpd" (fun () ->
      ok (sock.Io_if.so_bind { Io_if.sin_addr = ip "10.0.0.2"; sin_port = 80 });
      ok (sock.Io_if.so_listen ~backlog);
      match mode with
      | Reactor ->
          server_stats := Some (Httpd.serve_reactor ~reactor ~root ~sock ());
          Reactor.run reactor ~until:all_done
      | Threads ->
          server_stats :=
            Some
              (Httpd.serve_threaded
                 ~spawn:(fun f -> Clientos.spawn server f)
                 ~root ~sock ()));
  let mismatches = ref 0 in
  let t_start = ref max_int and t_end = ref 0 in
  let request fi v11 =
    if v11 then Printf.sprintf "GET /%s HTTP/1.1\r\nHost: b\r\n\r\n" (file_name fi)
    else Printf.sprintf "GET /%s HTTP/1.0\r\n\r\n" (file_name fi)
  in
  let push s frag =
    let b = Bytes.of_string frag in
    let rec go off =
      if off < Bytes.length b then
        match Bsd_socket.so_send s ~buf:b ~pos:off ~len:(Bytes.length b - off) with
        | Ok n -> go (off + n)
        | Error _ -> ()
    in
    go 0
  in
  (* Close-per-request client: connect, send, drain to EOF, check. *)
  let do_request_10 ~record fi =
    let t0 = Machine.now chost.Clientos.machine in
    let s = Bsd_socket.tcp_socket cstack in
    (match Bsd_socket.so_connect s ~dst:(ip "10.0.0.2") ~dport:80 with
    | Error _ -> incr mismatches
    | Ok () ->
        push s (request fi false);
        let buf = Bytes.create 4096 in
        let acc = Buffer.create (file_bytes + 256) in
        let rec drain () =
          match Bsd_socket.so_recv s ~buf ~pos:0 ~len:4096 with
          | Ok 0 | Error _ -> ()
          | Ok n ->
              Buffer.add_subbytes acc buf 0 n;
              drain ()
        in
        drain ();
        let resp = Buffer.contents acc in
        let exact =
          String.length resp > 12
          && String.sub resp 9 3 = "200"
          && match index_of resp "\r\n\r\n" with
             | Some i -> String.sub resp (i + 4) (String.length resp - i - 4) = bodies.(fi)
             | None -> false
        in
        if not exact then incr mismatches);
    ignore (Bsd_socket.so_close s);
    let t1 = Machine.now chost.Clientos.machine in
    if record then begin
      if t0 < !t_start then t_start := t0;
      if t1 > !t_end then t_end := t1
    end
  in
  (* Keep-alive client: one connection, [n] requests framed by
     Content-Length, every body byte-checked. *)
  let do_requests_11 ~record ~first_file n =
    let t0 = Machine.now chost.Clientos.machine in
    let s = Bsd_socket.tcp_socket cstack in
    (match Bsd_socket.so_connect s ~dst:(ip "10.0.0.2") ~dport:80 with
    | Error _ -> mismatches := !mismatches + n
    | Ok () ->
        let buf = Bytes.create 4096 in
        let acc = Buffer.create (file_bytes + 256) in
        let consumed = ref 0 in
        let rec fill need =
          if Buffer.length acc - !consumed >= need then true
          else
            match Bsd_socket.so_recv s ~buf ~pos:0 ~len:4096 with
            | Ok 0 | Error _ -> false
            | Ok got ->
                Buffer.add_subbytes acc buf 0 got;
                fill need
        in
        let avail () =
          String.sub (Buffer.contents acc) !consumed (Buffer.length acc - !consumed)
        in
        let rec hdr_end () =
          match index_of (avail ()) "\r\n\r\n" with
          | Some i -> Some i
          | None ->
              if fill (Buffer.length acc - !consumed + 1) then hdr_end () else None
        in
        let read_resp fi =
          match hdr_end () with
          | None -> incr mismatches
          | Some he -> (
              let hdr = String.sub (avail ()) 0 he in
              match content_length hdr with
              | None -> incr mismatches
              | Some len ->
                  if fill (he + 4 + len) then begin
                    let body = String.sub (avail ()) (he + 4) len in
                    let status_ok =
                      String.length hdr > 12 && String.sub hdr 9 3 = "200"
                    in
                    if not (status_ok && body = bodies.(fi)) then incr mismatches;
                    consumed := !consumed + he + 4 + len;
                    if Buffer.length acc - !consumed = 0 then begin
                      Buffer.clear acc;
                      consumed := 0
                    end
                  end
                  else incr mismatches)
        in
        let sent = ref 0 in
        while !sent < n do
          let burst = min pipeline (n - !sent) in
          (* One send for the whole burst: a pipelining client's requests
             ride a single segment instead of one apiece. *)
          let b = Buffer.create (burst * 48) in
          for k = 0 to burst - 1 do
            Buffer.add_string b (request ((first_file + !sent + k) mod files) true)
          done;
          push s (Buffer.contents b);
          for k = 0 to burst - 1 do
            read_resp ((first_file + !sent + k) mod files)
          done;
          sent := !sent + burst
        done);
    ignore (Bsd_socket.so_close s);
    let t1 = Machine.now chost.Clientos.machine in
    if record then begin
      if t0 < !t_start then t_start := t0;
      if t1 > !t_end then t_end := t1
    end
  in
  (* Warmup: resolves ARP on both machines and faults the working set
     into the buffer cache once, so the measured run is warm. *)
  let warm = ref false in
  Clientos.spawn chost ~name:"warmup" (fun () ->
      Kclock.sleep_ns 2_000_000;
      if knobs.k_keepalive then do_requests_11 ~record:false ~first_file:0 files
      else
        for fi = 0 to files - 1 do
          do_request_10 ~record:false fi
        done;
      warm := true);
  (* Counter baseline: everything after this point is the measured run
     plus nothing else (reset_globals cleared the rest). *)
  let c0_hits = ref 0 and c0_misses = ref 0 in
  for i = 0 to clients - 1 do
    Clientos.spawn chost ~name:(Printf.sprintf "c%d" i) (fun () ->
        Kclock.sleep_ns (4_000_000 + (i * 200));
        while not !warm do
          Kclock.sleep_ns 200_000
        done;
        if !c0_hits = 0 && !c0_misses = 0 then begin
          c0_hits := Cost.counters.Cost.bufcache_hits;
          c0_misses := Cost.counters.Cost.bufcache_misses
        end;
        if knobs.k_keepalive then
          do_requests_11 ~record:true ~first_file:i reqs_per_client
        else
          for r = 0 to reqs_per_client - 1 do
            do_request_10 ~record:true ((i + r) mod files)
          done;
        incr done_clients)
  done;
  Clientos.run tb ~until:all_done;
  let st = Option.get !server_stats in
  let duration = max 1 (!t_end - !t_start) in
  let total = clients * reqs_per_client in
  { r_config = config;
    r_mode = mode;
    r_knobs = knobs;
    r_clients = clients;
    r_pipeline = (if knobs.k_keepalive then pipeline else 1);
    r_requests = total;
    r_files = files;
    r_file_bytes = file_bytes;
    r_duration_ms = float_of_int duration /. 1e6;
    r_rps = float_of_int total *. 1e9 /. float_of_int duration;
    (* warmup issued [files] (keep-alive: one connection) extra requests *)
    r_responses = st.Httpd.responses - files;
    r_reused = st.Httpd.reused;
    r_pipelined = st.Httpd.pipelined;
    r_idle_closed = st.Httpd.idle_closed;
    r_capped = st.Httpd.capped;
    r_protocol_errors = st.Httpd.protocol_errors;
    r_mismatches = !mismatches;
    r_sendfile_bodies = st.Httpd.sendfile_bodies;
    r_sendfile_fallbacks = st.Httpd.sendfile_fallbacks;
    r_body_bytes_copied = st.Httpd.body_bytes_copied;
    r_copied_per_req = float_of_int st.Httpd.body_bytes_copied /. float_of_int (max 1 total);
    r_bufcache_hits = Cost.counters.Cost.bufcache_hits - !c0_hits;
    r_bufcache_misses = Cost.counters.Cost.bufcache_misses - !c0_misses;
    r_accepted = st.Httpd.accepted }
