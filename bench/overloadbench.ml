(* overloadbench — survival under deliberate overload, measured.

   Three attacks, each against both protocol stacks (or the httpd built
   over them), each with its defense off and on, on the deterministic
   virtual-time testbed:

     flood   a 10x spoofed-source SYN flood against a depth-4 listener
             while legitimate clients download; the metric is the
             goodput the LEGITIMATE clients still see, and how many of
             them get served at all.
     alloc   a ttcp-style bulk transfer while the seeded allocation
             injector fails 0.1%-1% of pooled packet-buffer allocations
             (in bursts): the transfer must stay byte-exact and every
             failure must surface as a counted drop, never a crash.
     loris   Slowloris against the event-driven httpd: attackers park
             half-finished requests to exhaust the connection budget;
             with the guard on, the header deadline reclaims them and
             late legitimate clients are still served.

   Everything is driven by the Cost.config overload knobs, all of which
   default off — the calibrated Table 1/2/rtt baselines never see any of
   this machinery. *)

type server = Sv_freebsd | Sv_linux

let server_name = function Sv_freebsd -> "FreeBSD" | Sv_linux -> "Linux"

let ip = Oskit.ip_of_string
let mask = ip "255.255.255.0"

let ok = function
  | Ok v -> v
  | Error e -> failwith ("overloadbench: " ^ Error.to_string e)

let pattern i = (i * 131) lxor (i lsr 8) land 0xff

(* Set the overload knobs for one run and restore the seed defaults
   after, re-seeding the allocation injector on both edges. *)
let with_knobs ?(syn_defense = false) ?(syncache_size = 64) ?(alloc_fail_prob = 0.0)
    ?(alloc_fail_seed = 1) ?(alloc_fail_burst = 1) ?(httpd_guard = false)
    ?(httpd_header_deadline_ns = 1_000_000_000) ?(httpd_shed_hiwat = 0) f =
  let c = Cost.config in
  let saved =
    ( c.Cost.syn_defense, c.Cost.syncache_size, c.Cost.alloc_fail_prob,
      c.Cost.alloc_fail_seed, c.Cost.alloc_fail_burst, c.Cost.httpd_guard,
      c.Cost.httpd_header_deadline_ns, c.Cost.httpd_shed_hiwat )
  in
  c.Cost.syn_defense <- syn_defense;
  c.Cost.syncache_size <- syncache_size;
  c.Cost.alloc_fail_prob <- alloc_fail_prob;
  c.Cost.alloc_fail_seed <- alloc_fail_seed;
  c.Cost.alloc_fail_burst <- alloc_fail_burst;
  c.Cost.httpd_guard <- httpd_guard;
  c.Cost.httpd_header_deadline_ns <- httpd_header_deadline_ns;
  c.Cost.httpd_shed_hiwat <- httpd_shed_hiwat;
  Memfault.reset ();
  Fun.protect
    ~finally:(fun () ->
      let sd, sz, ap, asd, ab, hg, hd, hs = saved in
      c.Cost.syn_defense <- sd;
      c.Cost.syncache_size <- sz;
      c.Cost.alloc_fail_prob <- ap;
      c.Cost.alloc_fail_seed <- asd;
      c.Cost.alloc_fail_burst <- ab;
      c.Cost.httpd_guard <- hg;
      c.Cost.httpd_header_deadline_ns <- hd;
      c.Cost.httpd_shed_hiwat <- hs;
      Memfault.reset ())
    f

let fresh_testbed () =
  Clientos.reset_globals ();
  Fdev.clear_drivers ();
  Clientos.make_testbed ~models:("3c905", "tulip") ()

(* One crafted option-less TCP segment out of [cstack] with a spoofable
   source — the attacker's packet injector. *)
let send_raw_tcp cstack ~src ~sport ~dst ~dport ~seq ~flags =
  let m = Mbuf.m_gethdr () in
  ignore (Mbuf.m_put m 20);
  let d = m.Mbuf.m_data and o = m.Mbuf.m_off in
  Bytes.set_uint16_be d o sport;
  Bytes.set_uint16_be d (o + 2) dport;
  Bytes.set_int32_be d (o + 4) (Int32.of_int (seq land 0xffffffff));
  Bytes.set_int32_be d (o + 8) 0l;
  Bytes.set d (o + 12) (Char.chr ((20 / 4) lsl 4));
  Bytes.set d (o + 13) (Char.chr flags);
  Bytes.set_uint16_be d (o + 14) 8192;
  Bytes.set_uint16_be d (o + 16) 0;
  Bytes.set_uint16_be d (o + 18) 0;
  let sum =
    In_cksum.cksum_chain m ~off:0 ~len:20
      ~init:(In_cksum.pseudo_header ~src ~dst ~proto:Ip.proto_tcp ~len:20)
  in
  Bytes.set_uint16_be d (o + 16) (if sum = 0 then 0xffff else sum);
  Ip.output cstack.Bsd_socket.ip ~proto:Ip.proto_tcp ~src ~dst m

(* ------------------------------------------------------------------ *)
(* flood: legitimate goodput through a spoofed SYN flood               *)

type flood_result = {
  fl_server : server;
  fl_defense : bool;
  fl_flood : int;   (* spoofed SYNs injected *)
  fl_legit : int;   (* legitimate clients *)
  fl_served : int;  (* ... that were served byte-exact *)
  fl_bytes : int;   (* legitimate bytes delivered *)
  fl_duration_ns : int;
  fl_goodput_mbit : float;
  fl_syncache_added : int;
  fl_completed : int; (* handshakes finished from cache or cookie *)
  fl_listen_overflow : int;
}

(* [legit] clients each download [bytes_per_client] from the server while
   [flood] spoofed SYNs hammer the same listener.  The clients are plain
   blocking BSD sockets: a client whose connect fails (the undefended
   stack's backlog is full of embryonic corpses) counts as unserved. *)
let flood_run ~server ~defense ~flood ~legit ~bytes_per_client () =
  with_knobs ~syn_defense:defense ~syncache_size:64 (fun () ->
      let tb = fresh_testbed () in
      let chost = tb.Clientos.host_a in
      let cstack = Clientos.freebsd_host chost ~ip:(ip "10.0.0.1") ~mask in
      let served = ref 0 and finished = ref 0 and bytes_got = ref 0 in
      let t_start = ref max_int and t_end = ref 0 in
      let block = Bytes.init 4096 (fun i -> Char.chr (pattern i)) in
      let serve send close =
        (* Push bytes_per_client of patterned data, then close. *)
        let rec push sent =
          if sent < bytes_per_client then begin
            let n = min 4096 (bytes_per_client - sent) in
            match send ~buf:block ~pos:0 ~len:n with
            | Ok k when k > 0 -> push (sent + k)
            | Ok _ -> push sent
            | Error _ -> ()
          end
        in
        push 0;
        close ()
      in
      let counters =
        match server with
        | Sv_linux ->
            let sb = Clientos.linux_host tb.Clientos.host_b ~ip:(ip "10.0.0.2") ~mask in
            Clientos.spawn tb.Clientos.host_b ~name:"srv" (fun () ->
                let ls = Linux_inet.socket sb in
                Linux_inet.bind sb ls ~port:7900;
                Linux_inet.listen sb ls ~backlog:4;
                for _ = 1 to legit do
                  let c = ok (Linux_inet.accept sb ls) in
                  serve
                    (fun ~buf ~pos ~len -> Linux_inet.send sb c ~buf ~pos ~len)
                    (fun () -> Linux_inet.close sb c)
                done);
            fun () ->
              ( sb.Linux_inet.syncache_added,
                sb.Linux_inet.syncache_completed + sb.Linux_inet.syncookies_validated,
                sb.Linux_inet.listen_overflow )
        | Sv_freebsd ->
            let sb = Clientos.freebsd_host tb.Clientos.host_b ~ip:(ip "10.0.0.2") ~mask in
            Clientos.spawn tb.Clientos.host_b ~name:"srv" (fun () ->
                let ls = Bsd_socket.tcp_socket sb in
                ok (Bsd_socket.so_bind ls ~port:7900);
                ok (Bsd_socket.so_listen ls ~backlog:4);
                for _ = 1 to legit do
                  let c = ok (Bsd_socket.so_accept ls) in
                  serve
                    (fun ~buf ~pos ~len -> Bsd_socket.so_send c ~buf ~pos ~len)
                    (fun () -> ignore (Bsd_socket.so_close c))
                done);
            let st = sb.Bsd_socket.tcp.Tcp.stats in
            fun () ->
              ( st.Tcp.syncache_added,
                st.Tcp.syncache_completed + st.Tcp.syncookies_validated,
                st.Tcp.listen_overflow )
      in
      (* The flood: every SYN from a distinct spoofed same-subnet source,
         so the SYN-ACKs die waiting on ARP for hosts that do not exist.
         One warm-up SYN resolves the attacker's own ARP entry so the
         burst is not throttled by the bounded ARP waiter queue. *)
      Clientos.spawn chost ~name:"flood" (fun () ->
          Kclock.sleep_ns 1_000_000;
          send_raw_tcp cstack ~src:(ip "10.0.0.99") ~sport:1999 ~dst:(ip "10.0.0.2")
            ~dport:7900 ~seq:1 ~flags:Tcp.th_syn;
          Kclock.sleep_ns 500_000;
          for i = 0 to flood - 1 do
            send_raw_tcp cstack
              ~src:(ip (Printf.sprintf "10.0.1.%d" (1 + (i mod 250))))
              ~sport:(2000 + i) ~dst:(ip "10.0.0.2") ~dport:7900 ~seq:(7 * i)
              ~flags:Tcp.th_syn
          done);
      for i = 0 to legit - 1 do
        Clientos.spawn chost ~name:(Printf.sprintf "legit%d" i) (fun () ->
            Kclock.sleep_ns (3_000_000 + (i * 500_000));
            let t0 = Machine.now chost.Clientos.machine in
            if t0 < !t_start then t_start := t0;
            let s = Bsd_socket.tcp_socket cstack in
            (match Bsd_socket.so_connect s ~dst:(ip "10.0.0.2") ~dport:7900 with
            | Error _ -> ()
            | Ok () ->
                let buf = Bytes.create 4096 in
                let got = ref 0 and mism = ref 0 in
                let rec drain () =
                  match Bsd_socket.so_recv s ~buf ~pos:0 ~len:4096 with
                  | Ok 0 | Error _ -> ()
                  | Ok n ->
                      for j = 0 to n - 1 do
                        if Char.code (Bytes.get buf j) <> pattern ((!got + j) mod 4096)
                        then incr mism
                      done;
                      got := !got + n;
                      drain ()
                in
                drain ();
                bytes_got := !bytes_got + !got;
                if !got = bytes_per_client && !mism = 0 then incr served);
            ignore (Bsd_socket.so_close s);
            let t1 = Machine.now chost.Clientos.machine in
            if t1 > !t_end then t_end := t1;
            incr finished)
      done;
      Clientos.run tb ~until:(fun () -> !finished >= legit);
      let dur = max 1 (!t_end - !t_start) in
      let added, completed, overflow = counters () in
      { fl_server = server; fl_defense = defense; fl_flood = flood;
        fl_legit = legit; fl_served = !served; fl_bytes = !bytes_got;
        fl_duration_ns = dur;
        fl_goodput_mbit = 8.0 *. float_of_int !bytes_got /. float_of_int dur *. 1000.0;
        fl_syncache_added = added; fl_completed = completed;
        fl_listen_overflow = overflow })

(* ------------------------------------------------------------------ *)
(* alloc: bulk transfer under injected allocation failure              *)

type alloc_result = {
  al_server : server;
  al_prob : float;
  al_bytes : int;
  al_byte_exact : bool;
  al_goodput_mbit : float;
  al_draws : int;
  al_failures : int;
  al_nomem_drops : int; (* stack-counted drops on the receiver+sender *)
}

let alloc_run ~server ~prob ~seed ~bytes () =
  with_knobs ~alloc_fail_prob:prob ~alloc_fail_seed:seed ~alloc_fail_burst:2
    (fun () ->
      let tb = fresh_testbed () in
      let mism = ref 0 and received = ref 0 and done_flag = ref false in
      let t_start = ref 0 and t_end = ref 0 in
      let chost = tb.Clientos.host_a in
      let send_all send buf len =
        let rec go off =
          if off < len then
            match send ~buf ~pos:off ~len:(len - off) with
            | Ok n when n > 0 -> go (off + n)
            | Ok _ -> Kclock.sleep_ns 1_000_000; go off
            | Error Error.Nomem -> Kclock.sleep_ns 5_000_000; go off
            | Error e -> failwith ("overloadbench send: " ^ Error.to_string e)
        in
        go 0
      in
      let fill block sent n =
        for i = 0 to n - 1 do
          Bytes.set block i (Char.chr (pattern (sent + i)))
        done
      in
      let nomem =
        match server with
        | Sv_linux ->
            let sa = Clientos.linux_host tb.Clientos.host_a ~ip:(ip "10.0.0.1") ~mask in
            let sb = Clientos.linux_host tb.Clientos.host_b ~ip:(ip "10.0.0.2") ~mask in
            Clientos.spawn tb.Clientos.host_b ~name:"srv" (fun () ->
                let ls = Linux_inet.socket sb in
                Linux_inet.bind sb ls ~port:7901;
                Linux_inet.listen sb ls ~backlog:2;
                let c = ok (Linux_inet.accept sb ls) in
                let buf = Bytes.create 4096 in
                let rec loop () =
                  match ok (Linux_inet.recv sb c ~buf ~pos:0 ~len:4096) with
                  | 0 -> Linux_inet.close sb c; done_flag := true
                  | n ->
                      for i = 0 to n - 1 do
                        if Char.code (Bytes.get buf i) <> pattern (!received + i)
                        then incr mism
                      done;
                      received := !received + n;
                      loop ()
                in
                loop ());
            Clientos.spawn chost ~name:"cli" (fun () ->
                Kclock.sleep_ns 1_000_000;
                t_start := Machine.now chost.Clientos.machine;
                let rec connect tries =
                  let s = Linux_inet.socket sa in
                  match Linux_inet.connect sa s ~dst:(ip "10.0.0.2") ~dport:7901 with
                  | Ok () -> s
                  | Error _ when tries < 50 ->
                      Kclock.sleep_ns 10_000_000;
                      connect (tries + 1)
                  | Error e -> failwith ("overloadbench connect: " ^ Error.to_string e)
                in
                let s = connect 0 in
                let block = Bytes.create 4096 in
                let rec push sent =
                  if sent < bytes then begin
                    let n = min 4096 (bytes - sent) in
                    fill block sent n;
                    send_all
                      (fun ~buf ~pos ~len -> Linux_inet.send sa s ~buf ~pos ~len)
                      block n;
                    push (sent + n)
                  end
                in
                push 0;
                Linux_inet.close sa s;
                t_end := Machine.now chost.Clientos.machine);
            fun () -> sa.Linux_inet.nomem_drops + sb.Linux_inet.nomem_drops
        | Sv_freebsd ->
            let sa = Clientos.freebsd_host tb.Clientos.host_a ~ip:(ip "10.0.0.1") ~mask in
            let sb = Clientos.freebsd_host tb.Clientos.host_b ~ip:(ip "10.0.0.2") ~mask in
            Clientos.spawn tb.Clientos.host_b ~name:"srv" (fun () ->
                let ls = Bsd_socket.tcp_socket sb in
                ok (Bsd_socket.so_bind ls ~port:7901);
                ok (Bsd_socket.so_listen ls ~backlog:2);
                let c = ok (Bsd_socket.so_accept ls) in
                let buf = Bytes.create 4096 in
                let rec loop () =
                  match ok (Bsd_socket.so_recv c ~buf ~pos:0 ~len:4096) with
                  | 0 -> ignore (Bsd_socket.so_close c); done_flag := true
                  | n ->
                      for i = 0 to n - 1 do
                        if Char.code (Bytes.get buf i) <> pattern (!received + i)
                        then incr mism
                      done;
                      received := !received + n;
                      loop ()
                in
                loop ());
            Clientos.spawn chost ~name:"cli" (fun () ->
                Kclock.sleep_ns 1_000_000;
                t_start := Machine.now chost.Clientos.machine;
                let rec connect tries =
                  let s = Bsd_socket.tcp_socket sa in
                  match Bsd_socket.so_connect s ~dst:(ip "10.0.0.2") ~dport:7901 with
                  | Ok () -> s
                  | Error _ when tries < 50 ->
                      Kclock.sleep_ns 10_000_000;
                      connect (tries + 1)
                  | Error e -> failwith ("overloadbench connect: " ^ Error.to_string e)
                in
                let s = connect 0 in
                let block = Bytes.create 4096 in
                let rec push sent =
                  if sent < bytes then begin
                    let n = min 4096 (bytes - sent) in
                    fill block sent n;
                    send_all
                      (fun ~buf ~pos ~len -> Bsd_socket.so_send s ~buf ~pos ~len)
                      block n;
                    push (sent + n)
                  end
                in
                push 0;
                ignore (Bsd_socket.so_close s);
                t_end := Machine.now chost.Clientos.machine);
            fun () ->
              sa.Bsd_socket.tcp.Tcp.stats.Tcp.nomem_drops
              + sb.Bsd_socket.tcp.Tcp.stats.Tcp.nomem_drops
              + sa.Bsd_socket.ip.Ip.nomem_drops + sb.Bsd_socket.ip.Ip.nomem_drops
      in
      Clientos.run tb ~until:(fun () -> !done_flag);
      let dur = max 1 (!t_end - !t_start) in
      { al_server = server; al_prob = prob; al_bytes = bytes;
        al_byte_exact = (!done_flag && !mism = 0 && !received = bytes);
        al_goodput_mbit = 8.0 *. float_of_int !received /. float_of_int dur *. 1000.0;
        al_draws = Memfault.draws (); al_failures = Memfault.failures ();
        al_nomem_drops = nomem () })

(* ------------------------------------------------------------------ *)
(* loris: Slowloris vs the httpd header deadline                       *)

type loris_result = {
  lo_guard : bool;
  lo_loris : int;
  lo_legit : int;
  lo_served : int;          (* legitimate 200s, byte-exact *)
  lo_deadline_closed : int;
  lo_shed : int;            (* over max_conns, silently dropped *)
  lo_peak_active : int;
}

let file_bytes = 1024

let make_root () =
  let dev = Mem_blkio.make ~bytes:(1 lsl 20) () in
  let root = ok (Fs_glue.newfs dev) in
  let f = ok (root.Io_if.d_create "index.html") in
  let body = Bytes.init file_bytes (fun i -> Char.chr (pattern i)) in
  let rec push off =
    if off < file_bytes then
      match f.Io_if.f_write ~buf:body ~pos:off ~offset:off ~amount:(file_bytes - off) with
      | Ok n -> push (off + n)
      | Error e -> failwith ("overloadbench root: " ^ Error.to_string e)
  in
  push 0;
  (root, Bytes.to_string body)

(* [loris] attackers each park a half-finished request.  The server's
   connection budget is exactly [loris] — without the guard the attackers
   own every slot when the [legit] clients arrive at t=100ms and each one
   is shed on accept; with the 50 ms header deadline the slots have
   already been reclaimed. *)
let loris_run ~guard ~loris ~legit () =
  with_knobs ~httpd_guard:guard ~httpd_header_deadline_ns:50_000_000 (fun () ->
      let tb = fresh_testbed () in
      let server = tb.Clientos.host_b and chost = tb.Clientos.host_a in
      let root, expect = make_root () in
      let stack = Clientos.freebsd_host server ~ip:(ip "10.0.0.2") ~mask in
      let sock = Freebsd_glue.socket_com stack (Bsd_socket.tcp_socket stack) in
      let cstack = Clientos.freebsd_host chost ~ip:(ip "10.0.0.1") ~mask in
      let served = ref 0 and legit_done = ref 0 in
      let all () = !legit_done >= legit in
      let server_stats = ref None in
      let reactor = Reactor.create () in
      Clientos.spawn server ~name:"httpd" (fun () ->
          ok (sock.Io_if.so_bind { Io_if.sin_addr = ip "10.0.0.2"; sin_port = 80 });
          ok (sock.Io_if.so_listen ~backlog:32);
          server_stats :=
            Some (Httpd.serve_reactor ~reactor ~root ~sock ~max_conns:loris ());
          Reactor.run reactor ~until:all);
      let push_str s frag =
        let b = Bytes.of_string frag in
        let rec go off =
          if off < Bytes.length b then
            match Bsd_socket.so_send s ~buf:b ~pos:off ~len:(Bytes.length b - off) with
            | Ok n -> go (off + n)
            | Error _ -> ()
        in
        go 0
      in
      for i = 0 to loris - 1 do
        Clientos.spawn chost ~name:(Printf.sprintf "loris%d" i) (fun () ->
            Kclock.sleep_ns (3_000_000 + (i * 100_000));
            let s = Bsd_socket.tcp_socket cstack in
            (match Bsd_socket.so_connect s ~dst:(ip "10.0.0.2") ~dport:80 with
            | Error _ -> ()
            | Ok () ->
                push_str s "GET /index.html HTTP/1.0\r\nX-Slow: yes\r\n";
                (* Hold the connection; never finish the headers. *)
                let buf = Bytes.create 256 in
                ignore (Bsd_socket.so_recv s ~buf ~pos:0 ~len:256));
            ignore (Bsd_socket.so_close s))
      done;
      for i = 0 to legit - 1 do
        Clientos.spawn chost ~name:(Printf.sprintf "legit%d" i) (fun () ->
            Kclock.sleep_ns (100_000_000 + (i * 200_000));
            let s = Bsd_socket.tcp_socket cstack in
            (match Bsd_socket.so_connect s ~dst:(ip "10.0.0.2") ~dport:80 with
            | Error _ -> ()
            | Ok () ->
                push_str s "GET /index.html HTTP/1.0\r\n\r\n";
                let buf = Bytes.create 4096 in
                let acc = Buffer.create 2048 in
                let rec drain () =
                  match Bsd_socket.so_recv s ~buf ~pos:0 ~len:4096 with
                  | Ok 0 | Error _ -> ()
                  | Ok n -> Buffer.add_subbytes acc buf 0 n; drain ()
                in
                drain ();
                let resp = Buffer.contents acc in
                let is200 =
                  String.length resp > 12 && String.sub resp 0 12 = "HTTP/1.0 200"
                in
                let body_ok =
                  let rec find j =
                    if j + 4 > String.length resp then None
                    else if String.sub resp j 4 = "\r\n\r\n" then Some (j + 4)
                    else find (j + 1)
                  in
                  match find 0 with
                  | Some j -> String.sub resp j (String.length resp - j) = expect
                  | None -> false
                in
                if is200 && body_ok then incr served);
            ignore (Bsd_socket.so_close s);
            incr legit_done)
      done;
      Clientos.run tb ~until:all;
      let st = Option.get !server_stats in
      { lo_guard = guard; lo_loris = loris; lo_legit = legit; lo_served = !served;
        lo_deadline_closed = st.Httpd.deadline_closed; lo_shed = st.Httpd.shed;
        lo_peak_active = st.Httpd.peak_active })
