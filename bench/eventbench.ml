(* Event-core microbench: the complexity curves behind the kqueue
   reactor engine and the hierarchical timing wheel.

   Both experiments hold the *hot* population fixed (128 ready watches,
   128 due timers) and sweep the *idle* population 10^2..10^5.  The
   claim under test is the one DESIGN.md makes for the event core:
   per-pass work tracks the ready/due set, never the registered set.

   - kqueue vs legacy scan: N idle watches + 128 hot ones on synthetic
     asyncio objects; each round fires the hot set and runs one reactor
     pass.  The legacy engine visits every watch per pass (O(watches));
     the kqueue engine dequeues exactly the fired knotes (O(ready)).
     [Reactor.stats.visits] is the deterministic work counter.

   - timing wheel: N idle timers parked seconds-to-minutes out + 128
     timers due inside a 900-tick window; one [Timewheel.advance] walks
     the window.  Wheel work = fires + cascade re-files, against the
     every-tick-scan strawman of armed x ticks visits (what the
     pre-wheel TCP slow tick paid per PCB).  The same run checks the
     timing contract: no fire before its deadline, none more than one
     granule after. *)

(* ---- synthetic asyncio: exact, driver-free readiness source ---- *)

type synthetic = {
  syn_aio : Io_if.asyncio;
  fire : unit -> unit; (* become readable and notify listeners *)
  clear : unit -> unit; (* consumed: back to not-ready *)
}

let synthetic () =
  let subs = ref [] and next = ref 1 and ready = ref 0 in
  let aio =
    Io_if.asyncio_view
      ~unknown:(fun () -> Com.create (fun _ -> []))
      ~poll:(fun () -> !ready)
      ~add_listener:(fun ~mask f ->
        let id = !next in
        incr next;
        subs := (id, mask, f) :: !subs;
        id)
      ~remove_listener:(fun id -> subs := List.filter (fun (i, _, _) -> i <> id) !subs)
      ()
  in
  { syn_aio = aio;
    fire =
      (fun () ->
        ready := Io_if.aio_read;
        List.iter (fun (_, m, f) -> if m land Io_if.aio_read <> 0 then f Io_if.aio_read) !subs);
    clear = (fun () -> ready := 0) }

type kq_row = {
  kr_idle : int;
  kr_hot : int;
  kr_rounds : int;
  kr_scan_visits : int; (* legacy engine: watch-list entries examined *)
  kr_kq_visits : int; (* kqueue engine: knotes dequeued *)
  kr_dispatches : int; (* callbacks run (identical in both engines) *)
}

(* One engine, one idle population: returns (visits, dispatches, hits). *)
let kq_run ~kq ~idle ~hot ~rounds =
  let saved = Cost.config.Cost.kq in
  Cost.config.Cost.kq <- kq;
  Fun.protect ~finally:(fun () -> Cost.config.Cost.kq <- saved) @@ fun () ->
  let r = Reactor.create () in
  for _ = 1 to idle do
    let s = synthetic () in
    ignore (Reactor.watch r s.syn_aio ~mask:Io_if.aio_read (fun _ -> ()))
  done;
  let hits = ref 0 in
  let hots = Array.init hot (fun _ -> synthetic ()) in
  Array.iter
    (fun s ->
      ignore
        (Reactor.watch r s.syn_aio ~mask:Io_if.aio_read (fun _ ->
             incr hits;
             s.clear ())))
    hots;
  for _ = 1 to rounds do
    Array.iter (fun s -> s.fire ()) hots;
    ignore (Reactor.step r)
  done;
  let st = Reactor.stats r in
  (st.Reactor.visits, st.Reactor.dispatches, !hits)

let kq_sweep ~idle ~hot ~rounds =
  let scan_visits, scan_disp, scan_hits = kq_run ~kq:false ~idle ~hot ~rounds in
  let kq_visits, kq_disp, kq_hits = kq_run ~kq:true ~idle ~hot ~rounds in
  if scan_hits <> hot * rounds || kq_hits <> hot * rounds then
    failwith "eventbench: an engine lost a readiness notification";
  if scan_disp <> kq_disp then failwith "eventbench: engines dispatched differently";
  { kr_idle = idle;
    kr_hot = hot;
    kr_rounds = rounds;
    kr_scan_visits = scan_visits;
    kr_kq_visits = kq_visits;
    kr_dispatches = kq_disp }

type wheel_row = {
  wr_idle : int;
  wr_hot : int;
  wr_ticks : int; (* window walked by [advance] *)
  wr_fires : int;
  wr_cascades : int;
  wr_work : int; (* fires + cascades: the wheel's actual visits *)
  wr_scan_visits : int; (* strawman: every-tick scan of all armed *)
  wr_early : int; (* fires before deadline (must be 0) *)
  wr_late : int; (* fires > 1 granule past deadline (must be 0) *)
  wr_missed : int; (* due timers that never fired (must be 0) *)
}

let wheel_window_ticks = 900

let wheel_run ~idle ~hot =
  let w = Timewheel.create ~now_ns:0 () in
  let g = Timewheel.granularity_ns w in
  (* Idle park: deadlines 1024 ticks .. ~60s, spread across levels 1-2,
     all safely past the advance window so none fire or cascade. *)
  for i = 0 to idle - 1 do
    let tick = 1024 + (i * 389 mod 60_000) in
    ignore (Timewheel.arm w ~deadline_ns:(tick * g) (fun () -> ()))
  done;
  let early = ref 0 and late = ref 0 and fired_hot = ref 0 in
  for i = 0 to hot - 1 do
    (* Mid-granule deadlines inside the window, exercising the ceiling. *)
    let deadline_ns = (((1 + (i * 7 mod (wheel_window_ticks - 1))) * g) + (g / 2)) in
    ignore
      (Timewheel.arm w ~deadline_ns (fun () ->
           incr fired_hot;
           let at = Timewheel.now_ns w in
           if at < deadline_ns then incr early;
           if at - deadline_ns >= g then incr late))
  done;
  (* Walk the window in uneven chunks, the way a live driver would. *)
  let now = ref 0 in
  let chunk = ref (3 * g) in
  while !now < wheel_window_ticks * g do
    now := min (wheel_window_ticks * g) (!now + !chunk);
    chunk := ((!chunk * 7) mod (97 * g)) + g;
    ignore (Timewheel.advance w ~now_ns:!now)
  done;
  let st = Timewheel.stats w in
  { wr_idle = idle;
    wr_hot = hot;
    wr_ticks = wheel_window_ticks;
    wr_fires = st.Timewheel.fires;
    wr_cascades = st.Timewheel.cascades;
    wr_work = st.Timewheel.fires + st.Timewheel.cascades;
    wr_scan_visits = (idle + hot) * wheel_window_ticks;
    wr_early = !early;
    wr_late = !late;
    wr_missed = hot - !fired_hot }

let idle_sweep = [ 100; 1_000; 10_000; 100_000 ]
let hot_set = 128
let kq_rounds = 10
